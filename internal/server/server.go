// Package server is the hardened HTTP serving layer over a
// notable.Engine: the process boundary where the library's request-scoped
// guarantees (PR 5's ctx cancellation through every pipeline layer) meet
// slow clients, deploy-time restarts, traffic spikes, and buggy handlers.
// Robustness is the package's contract, not a feature flag:
//
//   - Graceful drain. Run serves until its ctx is cancelled (the caller
//     wires SIGTERM/SIGINT), then stops accepting connections, flips
//     /healthz to draining (load balancers stop routing), and lets
//     in-flight requests finish under Config.DrainTimeout. Stragglers past
//     the deadline are cancelled through their request ctx — the engine
//     aborts within one PageRank sweep or label test, and because
//     cancellation never stores partial vectors or records, the process
//     exits with caches uncorrupted (not that it matters then) and, more
//     importantly, without wedging on a stuck request.
//
//   - Deadline-degraded mode. Every request runs under a per-request
//     timeout propagated into ctx. A search that cannot finish in time
//     returns HTTP 200 with the labels tested so far and "degraded": true
//     (plus tested/total counts) instead of a 504 — an interactive client
//     gets a usable prefix of the report rather than nothing. Clients opt
//     out with "degrade": false to get the 504.
//
//   - Panic isolation. A panicking handler is recovered, logged with its
//     stack, and answered with a 500; concurrent requests and the process
//     are unaffected.
//
//   - Load shedding. An admission gate sized off the shared internal/exec
//     executor fast-fails with 503 + Retry-After once Config.MaxInFlight
//     requests are in flight, so overload degrades throughput instead of
//     latency: admitted requests keep their p50, excess ones get an
//     immediate, cheap answer.
//
// Endpoints: POST /v1/search (one query), POST /v1/batch (many, one
// deduplicated pass), POST /v1/stream (NDJSON, one line per outcome in
// completion order), POST /v1/ingest (live triple mutations: the batch
// publishes a new graph epoch without a restart, while in-flight
// searches finish on the epoch they pinned; refused with 503 +
// Retry-After once draining — a node about to exit takes no new writes),
// GET /healthz (flips 503 while draining), GET /statsz (cache layers,
// executor load, in-flight gauge, graph epoch and overlay/compaction
// counters, WAL/checkpoint gauges on durable engines), and
// net/http/pprof under /debug/pprof/ when enabled.
package server

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/qcache"
)

// Config tunes the serving layer. The zero value serves on :8080 with
// production-shaped defaults; see the field comments for each.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// DrainTimeout bounds graceful shutdown: how long in-flight requests
	// may keep running after the listener closes before their contexts are
	// cancelled (default 10s).
	DrainTimeout time.Duration
	// RequestTimeout is the per-request deadline applied when the request
	// body carries no timeout_ms (default 30s).
	RequestTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (default 60s).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies; larger ones get 413
	// (default 1 MiB).
	MaxBodyBytes int64
	// MaxInFlight is the admission gate: engine requests beyond it are
	// shed with 503 + Retry-After. Default 4× the shared executor's worker
	// count — enough concurrency to keep the pool saturated through
	// decode/encode gaps, small enough that queueing shows up as fast 503s
	// instead of latency.
	MaxInFlight int
	// RetryAfter is the Retry-After hint on shed responses (default 1s).
	RetryAfter time.Duration
	// ReadOnly refuses POST /v1/ingest with 403: the stance of a
	// replication follower, whose graph is written only by the primary's
	// record stream. Reads are unaffected.
	ReadOnly bool
	// MinEpochWait bounds how long a read carrying X-Min-Epoch blocks for
	// the engine to catch up before answering 503 + Retry-After (default
	// 500ms). The wait never exceeds the request's own deadline.
	MinEpochWait time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Logf receives structured-ish log lines (default log.Printf).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * exec.Default().Stats().Workers
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MinEpochWait <= 0 {
		c.MinEpochWait = 500 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Server serves one engine over HTTP. Construct with New (engine in
// hand) or NewPending (engine still booting — WAL replay, snapshot
// download); start with Run (or Serve, for an existing listener).
type Server struct {
	// eng is nil while the process is still building its engine
	// (NewPending): the server answers liveness and shapes a readiness
	// "no" instead of refusing connections, so orchestrators can tell a
	// long WAL replay from a dead process. Engine endpoints 503 until
	// SetEngine arms it.
	eng atomic.Pointer[notable.Engine]
	cfg Config

	http       *http.Server
	baseCtx    context.Context
	cancelBase context.CancelFunc

	draining atomic.Bool
	// drainCh is closed the moment drain begins. Long-lived streams (the
	// replication tail) select on it and terminate immediately — they
	// would otherwise hold http.Server.Shutdown at the deadline every
	// drain.
	drainCh    chan struct{}
	drainStart atomic.Int64 // unix nanos; 0 until draining
	inflight   atomic.Int64
	shed       atomic.Int64
	admit      chan struct{}

	// readiness is the serving-fitness signal behind /healthz (nil means
	// "ready whenever an engine is set"): boot and follower lifecycles
	// publish their catch-up state here via SetReadiness.
	readiness atomic.Pointer[Readiness]

	reqSeq   atomic.Uint64
	reqNonce string
	start    time.Time

	// met and accessLog are the serving layer's observability state:
	// per-endpoint counters/histograms behind GET /metrics, and the ring
	// of recent requests behind GET /v1/logz. Both are built once in
	// NewPending; the per-request path only touches preregistered series.
	met       *serverMetrics
	accessLog *obs.AccessLog
}

// Readiness is the serving-fitness state behind /healthz: distinct from
// liveness (/livez), which only says the process is running. A follower
// mid-catch-up or a booting durable engine is alive but not ready.
type Readiness struct {
	// Ready reports fitness to serve reads at a current epoch.
	Ready bool
	// Status is a short human-readable state ("catching-up", "resyncing",
	// "booting"); "" renders as "ok" or "unready".
	Status string
	// Epoch is the engine's current epoch; Target is the epoch it must
	// reach to be ready (0 when unknown or not applicable).
	Epoch, Target uint64
}

// New builds a Server over eng. The engine must already hold its graph;
// the server adds no per-request state beyond the gauges above.
func New(eng *notable.Engine, cfg Config) *Server {
	s := NewPending(cfg)
	s.eng.Store(eng)
	return s
}

// NewPending builds a Server with no engine yet: every route is mounted,
// liveness answers, readiness says "booting", and engine endpoints 503
// until SetEngine. This is how ncserved listens during a long WAL replay
// or follower bootstrap instead of leaving connection refused — the
// difference between "starting up" and "dead" from outside.
func NewPending(cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    baseCtx,
		cancelBase: cancel,
		drainCh:    make(chan struct{}),
		admit:      make(chan struct{}, cfg.MaxInFlight),
		reqNonce:   newNonce(),
		start:      time.Now(),
		met:        newServerMetrics(),
		accessLog:  obs.NewAccessLog(1024),
	}
	s.http = &http.Server{
		Addr:    cfg.Addr,
		Handler: s.Handler(),
		// Request contexts derive from baseCtx so the drain path can cancel
		// stragglers: the engine aborts within one sweep or label test.
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// SetEngine arms a NewPending server with its engine. Call once, after
// the engine is fully constructed; engine endpoints begin serving on the
// next request.
func (s *Server) SetEngine(eng *notable.Engine) { s.eng.Store(eng) }

// engine returns the engine, or nil while still booting.
func (s *Server) engine() *notable.Engine { return s.eng.Load() }

// SetReadiness publishes the serving-fitness state /healthz reports.
// Boot and follower lifecycles call it as they progress; passing
// Ready true flips /healthz back to 200.
func (s *Server) SetReadiness(r Readiness) { s.readiness.Store(&r) }

// newNonce returns a per-process request-id prefix so ids stay unique
// across restarts.
func newNonce() string {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "srv"
	}
	return hex.EncodeToString(b[:])
}

// Handler returns the server's full route tree — exposed for tests and
// for embedding behind an existing mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/livez", s.handleLivez)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/logz", s.handleLogz)
	mux.Handle("/v1/search", s.engineEndpoint(s.handleSearch))
	mux.Handle("/v1/batch", s.engineEndpoint(s.handleBatch))
	mux.Handle("/v1/stream", s.engineEndpoint(s.handleStream))
	mux.Handle("/v1/ingest", s.engineEndpoint(s.handleIngest))
	// Replication exports: GET, long-lived, outside the admission gate —
	// a follower's stream must not compete with query traffic for slots.
	mux.HandleFunc("/v1/repl/stream", s.handleReplStream)
	mux.HandleFunc("/v1/repl/snapshot", s.handleReplSnapshot)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Every route — engine or not — gets an id, a log line, and panic
	// isolation; only engine endpoints pass the admission gate.
	return s.withRequestID(s.withRecovery(mux))
}

// Run listens on Config.Addr and serves until ctx is cancelled, then
// drains: the caller typically passes a signal.NotifyContext ctx so
// SIGTERM/SIGINT trigger the drain. Returns nil on a clean drain (even if
// stragglers had to be cancelled — that is the designed degraded path,
// and it is logged), or the listener/serve error.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is Run over an existing listener (tests use port 0).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.cfg.Logf("server: listening on %s", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- s.http.Serve(ln) }()
	select {
	case err := <-errc:
		// The listener died on its own; nothing to drain.
		return err
	case <-ctx.Done():
	}
	return s.drain(errc)
}

// drain is the shutdown half of Serve: stop accepting, wait out in-flight
// requests under the drain deadline, cancel stragglers, and only then
// force-close whatever still holds a connection.
func (s *Server) drain(errc chan error) error {
	if s.draining.CompareAndSwap(false, true) {
		s.drainStart.Store(time.Now().UnixNano())
		// Wake long-lived streams (replication tails) so Shutdown's
		// in-flight wait is over handlers that actually end.
		close(s.drainCh)
	}
	s.cfg.Logf("server: draining (deadline %v, %d in flight)", s.cfg.DrainTimeout, s.inflight.Load())
	shCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := s.http.Shutdown(shCtx)
	if err != nil {
		// Stragglers outlived the deadline: cancel their request contexts —
		// the engine stops within one sweep or label test — and give the
		// handlers a short grace to flush their (degraded or error)
		// responses before dropping connections.
		n := s.inflight.Load()
		s.cancelBase()
		graceCtx, cancelGrace := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancelGrace()
		if err2 := s.http.Shutdown(graceCtx); err2 != nil {
			s.http.Close()
		}
		s.cfg.Logf("server: drain deadline exceeded; cancelled %d in-flight request(s)", n)
	} else {
		s.cancelBase()
	}
	<-errc // Serve has returned http.ErrServerClosed
	s.cfg.Logf("server: drained")
	return nil
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of admitted engine requests currently being
// served.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// healthzResponse is the /healthz (readiness) body: ready or not, why,
// and — when the process is catching up — how far along it is.
type healthzResponse struct {
	Status string `json:"status"`
	Ready  bool   `json:"ready"`
	Epoch  uint64 `json:"epoch,omitempty"`
	Target uint64 `json:"target,omitempty"`
}

// handleHealthz is READINESS: 200 only when this process should receive
// traffic. Draining, booting (engine not yet set — a durable engine
// still replaying its WAL tail), or a follower behind its epoch floor
// all answer 503 with the current/target epochs, while /livez stays 200
// — the difference between "stop routing here" and "restart me".
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, healthzResponse{Status: "draining"})
		return
	}
	eng := s.engine()
	if eng == nil {
		resp := healthzResponse{Status: "booting"}
		if rd := s.readiness.Load(); rd != nil {
			resp.Epoch, resp.Target = rd.Epoch, rd.Target
			if rd.Status != "" {
				resp.Status = rd.Status
			}
		}
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	if rd := s.readiness.Load(); rd != nil && !rd.Ready {
		status := rd.Status
		if status == "" {
			status = "unready"
		}
		writeJSON(w, http.StatusServiceUnavailable, healthzResponse{
			Status: status, Epoch: rd.Epoch, Target: rd.Target,
		})
		return
	}
	writeJSON(w, http.StatusOK, healthzResponse{Status: "ok", Ready: true, Epoch: eng.Epoch()})
}

// handleLivez is LIVENESS: 200 whenever the process can answer at all —
// booting, catching up, even draining. Restart triggers key off this;
// routing decisions key off /healthz.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "alive"})
}

// statszResponse is the /statsz payload: the metrics-lite JSON view of
// the process — cache residency per layer, executor load, and the serving
// gauges an admission-tuning loop needs.
type statszResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	InFlight      int64   `json:"in_flight"`
	MaxInFlight   int     `json:"max_in_flight"`
	Shed          int64   `json:"shed_total"`
	Goroutines    int     `json:"goroutines"`
	// RSSBytes is the process's resident set size read from
	// /proc/self/statm; 0 where procfs is unavailable. The soak harness
	// keys its leak thresholds off this.
	RSSBytes int64 `json:"rss_bytes"`
	// Live-graph gauges: the current epoch, the overlay's applied
	// add/delete counts since the last base rebuild, completed rebuilds,
	// and the last compaction's wall-clock.
	GraphEpoch       uint64  `json:"graph_epoch"`
	OverlayAdds      int     `json:"overlay_adds"`
	OverlayDels      int     `json:"overlay_dels"`
	BaseRebuilds     uint64  `json:"base_rebuilds"`
	LastCompactionMS float64 `json:"last_compaction_ms"`
	Compacting       bool    `json:"compacting"`
	// Durability gauges (all zero when the engine runs without a WAL):
	// log size, durable record count, the most recent fsync's duration
	// (disk-health canary), the newest checkpoint's epoch, and how many
	// records boot-time recovery replayed.
	WALEnabled       bool    `json:"wal_enabled"`
	WALBytes         int64   `json:"wal_bytes"`
	WALRecords       int64   `json:"wal_records"`
	WALLastFsyncMS   float64 `json:"wal_last_fsync_ms"`
	CheckpointEpoch  uint64  `json:"checkpoint_epoch"`
	RecoveredRecords int     `json:"recovered_records"`
	// SnapshotsSkipped counts checkpoint files boot recovery discarded as
	// unreadable — non-zero means the durability dir is limping on its
	// fallback checkpoint, a state health probes should surface, not just
	// a boot-time log line.
	SnapshotsSkipped int `json:"snapshots_skipped"`
	// Serving-topology gauges: whether this process takes writes, whether
	// readiness currently gates it, and the engine's replication state.
	ReadOnly     bool           `json:"read_only"`
	Ready        bool           `json:"ready"`
	Booting      bool           `json:"booting"`
	DurableEpoch uint64         `json:"durable_epoch"`
	Executor     exec.PoolStats `json:"executor"`
	Cache        qcache.Stats   `json:"cache"`
	// Metrics summarizes every latency histogram the process exposes
	// (count, mean, p50/p95/p99 in milliseconds) — the JSON-side view of
	// what GET /metrics exposes in full.
	Metrics map[string]obs.Summary `json:"metrics"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	resp := statszResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		InFlight:      s.inflight.Load(),
		MaxInFlight:   s.cfg.MaxInFlight,
		Shed:          s.shed.Load(),
		Goroutines:    runtime.NumGoroutine(),
		RSSBytes:      readRSSBytes(),
		ReadOnly:      s.cfg.ReadOnly,
		Executor:      exec.Default().Stats(),
		Metrics:       s.metricsSummaries(),
	}
	// Stats are point-in-time: an intermediary caching them would feed
	// tuning loops stale gauges.
	w.Header().Set("Cache-Control", "no-store")
	eng := s.engine()
	if eng == nil {
		// Still booting: serve the process-level gauges rather than refuse —
		// an operator watching a long WAL replay wants these.
		resp.Booting = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	vs := eng.VersionStats()
	ds := eng.DurabilityStats()
	resp.GraphEpoch = vs.Epoch
	resp.OverlayAdds = vs.OverlayAdds
	resp.OverlayDels = vs.OverlayDels
	resp.BaseRebuilds = vs.Rebuilds
	resp.LastCompactionMS = float64(vs.LastCompaction.Microseconds()) / 1000
	resp.Compacting = vs.Compacting
	resp.WALEnabled = ds.Enabled
	resp.WALBytes = ds.WALBytes
	resp.WALRecords = ds.WALRecords
	resp.WALLastFsyncMS = float64(ds.LastFsync.Microseconds()) / 1000
	resp.CheckpointEpoch = ds.CheckpointEpoch
	resp.RecoveredRecords = ds.RecoveredRecords
	resp.SnapshotsSkipped = ds.SkippedCheckpoints
	resp.Cache = eng.CacheStats()
	resp.Ready = true
	if rd := s.readiness.Load(); rd != nil {
		resp.Ready = rd.Ready
	}
	if de, err := eng.DurableEpoch(); err == nil {
		resp.DurableEpoch = de
	}
	writeJSON(w, http.StatusOK, resp)
}

// readRSSBytes returns the resident set size from /proc/self/statm
// (second field, in pages), or 0 on platforms without procfs — callers
// treat 0 as "unknown", not "no memory".
func readRSSBytes() int64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	f := strings.Fields(string(b))
	if len(f) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}

// errorResponse is the JSON error body every non-200 answer carries.
type errorResponse struct {
	Error     string   `json:"error"`
	RequestID string   `json:"request_id,omitempty"`
	Missing   []string `json:"missing,omitempty"`
}

// encBufPool recycles the buffers writeJSON encodes into: /statsz and
// /v1/logz payloads run to tens of kilobytes, and re-growing a fresh
// buffer per response is the dominant allocation of a stats poller's
// steady state.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSON encodes v into a pooled buffer, then writes it with the
// given status. Buffering first means an encode error — a programming
// bug, every payload here is plain structs — surfaces as a clean 500
// instead of a half-written 200, and the response carries an accurate
// Content-Length.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= 1<<20 { // don't pin a pathological payload forever
			buf.Reset()
			encBufPool.Put(buf)
		}
	}()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// writeError maps err to a status + JSON body. The mapping is by error
// identity, never by message: typed library errors arrive here intact.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	resp := errorResponse{Error: err.Error(), RequestID: requestIDFrom(r.Context())}
	var ue *notable.UnresolvedError
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		writeJSON(w, http.StatusRequestEntityTooLarge, resp)
	case errors.As(err, &ue):
		resp.Missing = ue.Missing
		writeJSON(w, http.StatusBadRequest, resp)
	case errors.Is(err, notable.ErrBadQuery), errors.Is(err, notable.ErrEmptyQuery),
		errors.Is(err, notable.ErrBadTriple):
		writeJSON(w, http.StatusBadRequest, resp)
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, resp)
	case errors.Is(err, context.Canceled):
		// The client went away (or the drain cancelled us); the connection
		// is usually dead, but answer properly in case it is not.
		writeJSON(w, statusClientClosedRequest, resp)
	default:
		writeJSON(w, http.StatusInternalServerError, resp)
	}
}

// statusClientClosedRequest is nginx's non-standard 499: the request ctx
// was cancelled from outside the handler.
const statusClientClosedRequest = 499

// retryAfterSeconds renders base as a whole-second Retry-After value
// with ±20% jitter, so a replica fleet (or a crowd of clients) told to
// come back later does not return in lockstep. Always ≥ 1.
func retryAfterSeconds(base time.Duration) string {
	jittered := float64(base) * (0.8 + 0.4*rand.Float64())
	secs := int(math.Ceil(jittered / float64(time.Second)))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// drainRetryAfter is the honest Retry-After base while draining: the
// time left until this process is actually gone (drain deadline minus
// elapsed) plus a restart margin — retrying against this address any
// sooner can only hit the same dying listener. Config.RetryAfter floors
// it (and covers the not-actually-draining race).
func (s *Server) drainRetryAfter() time.Duration {
	started := s.drainStart.Load()
	if started == 0 {
		return s.cfg.RetryAfter
	}
	remaining := s.cfg.DrainTimeout - time.Since(time.Unix(0, started)) + time.Second
	if remaining < s.cfg.RetryAfter {
		remaining = s.cfg.RetryAfter
	}
	return remaining
}

// badRequest wraps a request-shape problem (malformed JSON, oversized
// body) for writeError.
func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", notable.ErrBadQuery, fmt.Sprintf(format, args...))
}
