// Server-side observability: per-endpoint request counters and latency
// histograms, the access-log ring, and the GET /metrics + GET /v1/logz
// handlers that expose them.
//
// Every series is registered once at construction; the per-request path
// resolves its endpointMetrics with a string switch (no map lookup, no
// allocation) and pays a few atomic adds. The registry is only walked at
// scrape time.
package server

import (
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// statusClass buckets HTTP statuses for the request counters: 2xx, 4xx,
// 5xx, and everything else (1xx/3xx — rare enough to share a series).
var statusClasses = [4]string{"2xx", "4xx", "5xx", "other"}

func classIdx(status int) int {
	switch {
	case status >= 200 && status < 300:
		return 0
	case status >= 400 && status < 500:
		return 1
	case status >= 500:
		return 2
	default:
		return 3
	}
}

// endpointMetrics is one route's preregistered series: a counter per
// status class and a latency histogram.
type endpointMetrics struct {
	classes [len(statusClasses)]*obs.Counter
	lat     *obs.Histogram
}

// serverMetrics holds the serving layer's registry and every
// endpointMetrics, resolved by path switch on the hot path.
type serverMetrics struct {
	reg *obs.Registry

	search, batch, stream, ingest         endpointMetrics
	replStream, replSnapshot              endpointMetrics
	healthz, livez, statsz, metricz, logz endpointMetrics
	other                                 endpointMetrics

	shed *obs.Counter // admission-gate rejections
}

func newEndpointMetrics(reg *obs.Registry, path string) endpointMetrics {
	var m endpointMetrics
	for i, class := range statusClasses {
		m.classes[i] = reg.NewCounter("nc_http_requests_total",
			"HTTP requests served, by path and status class.",
			"path", path, "code", class)
	}
	m.lat = reg.NewHistogram("nc_http_request_seconds",
		"HTTP request latency in seconds, by path.", "path", path)
	return m
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	return &serverMetrics{
		reg:          reg,
		search:       newEndpointMetrics(reg, "/v1/search"),
		batch:        newEndpointMetrics(reg, "/v1/batch"),
		stream:       newEndpointMetrics(reg, "/v1/stream"),
		ingest:       newEndpointMetrics(reg, "/v1/ingest"),
		replStream:   newEndpointMetrics(reg, "/v1/repl/stream"),
		replSnapshot: newEndpointMetrics(reg, "/v1/repl/snapshot"),
		healthz:      newEndpointMetrics(reg, "/healthz"),
		livez:        newEndpointMetrics(reg, "/livez"),
		statsz:       newEndpointMetrics(reg, "/statsz"),
		metricz:      newEndpointMetrics(reg, "/metrics"),
		logz:         newEndpointMetrics(reg, "/v1/logz"),
		other:        newEndpointMetrics(reg, "other"),
		shed: reg.NewCounter("nc_http_shed_total",
			"Requests rejected by the admission gate."),
	}
}

// endpoint maps a request path to its preregistered series. Unknown
// paths (including /debug/pprof/) share the "other" series, so the
// cardinality of the exposition is fixed at construction — a scanner
// probing random URLs cannot grow it.
func (m *serverMetrics) endpoint(path string) *endpointMetrics {
	switch path {
	case "/v1/search":
		return &m.search
	case "/v1/batch":
		return &m.batch
	case "/v1/stream":
		return &m.stream
	case "/v1/ingest":
		return &m.ingest
	case "/v1/repl/stream":
		return &m.replStream
	case "/v1/repl/snapshot":
		return &m.replSnapshot
	case "/healthz":
		return &m.healthz
	case "/livez":
		return &m.livez
	case "/statsz":
		return &m.statsz
	case "/metrics":
		return &m.metricz
	case "/v1/logz":
		return &m.logz
	default:
		return &m.other
	}
}

// Metrics returns the server's own registry — request counters, latency
// histograms, shed counter — so callers (ncserved wires follower lag
// here) can register process-level series for exposition on /metrics.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// AccessLog returns the server's ring of recent requests.
func (s *Server) AccessLog() *obs.AccessLog { return s.accessLog }

// handleMetrics is GET /metrics: Prometheus text exposition of the
// server registry followed by the engine's (when armed). Family names
// are disjoint by construction (nc_http_* vs nc_stage_*/nc_request_*),
// so concatenating the two registries yields a well-formed exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only", RequestID: requestIDFrom(r.Context())})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	if err := s.met.reg.WritePrometheus(w); err != nil {
		return // client went away mid-scrape; nothing to salvage
	}
	if eng := s.engine(); eng != nil {
		_ = eng.Metrics().WritePrometheus(w)
	}
}

// logzResponse is the GET /v1/logz payload: the ring's recent requests,
// oldest first, plus the all-time total so a poller can tell how much
// the ring has dropped between scrapes.
type logzResponse struct {
	Total   uint64       `json:"total"`
	Records []obs.Record `json:"records"`
}

// handleLogz is GET /v1/logz: drain (non-consuming) the access-log ring.
// ?n= bounds the returned records to the newest n.
func (s *Server) handleLogz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only", RequestID: requestIDFrom(r.Context())})
		return
	}
	max := s.accessLog.Cap()
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, r, badRequestf("bad n=%q", v))
			return
		}
		if n < max {
			max = n
		}
	}
	recs := s.accessLog.Drain(max)
	if recs == nil {
		recs = []obs.Record{} // render as [], not null
	}
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, logzResponse{Total: s.accessLog.Total(), Records: recs})
}

// metricsSummaries flattens every histogram the process exposes —
// server registry plus the engine's when armed — into name → summary
// for the /statsz JSON view. Same-name families across the two
// registries (none today) would merge.
func (s *Server) metricsSummaries() map[string]obs.Summary {
	snaps := s.met.reg.Histograms()
	if eng := s.engine(); eng != nil {
		for name, snap := range eng.Metrics().Histograms() {
			if have, ok := snaps[name]; ok {
				snaps[name] = have.Merge(snap)
			} else {
				snaps[name] = snap
			}
		}
	}
	out := make(map[string]obs.Summary, len(snaps))
	for name, snap := range snaps {
		out[name] = snap.Summarize()
	}
	return out
}
