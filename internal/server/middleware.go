// Middleware: request-id injection, access logging, panic isolation, the
// load-shedding admission gate, body-size limits, and per-request timeout
// propagation. Ordering (outermost first) is requestID → recovery →
// admission → handler: the id exists before anything can log or panic,
// recovery wraps everything including the gate, and the gate runs before
// a byte of body is read so a shed request costs one header parse.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"

	"repro/internal/obs"
	"sync/atomic"
	"time"
)

// ctxKey is the private type for context values set by middleware.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

// requestIDFrom returns the request id injected by withRequestID ("" when
// the middleware did not run, e.g. direct handler tests).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// statusWriter records the status code (and whether one was written) so
// the logger and the panic recovery know the response's state.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so NDJSON streaming works
// through the wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withRequestID honors an inbound X-Request-ID (so ids follow a request
// across proxies) or mints one, echoes it on the response, stores it in
// ctx, and writes the access-log line when the handler returns.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("%s-%d", s.reqNonce, s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id)))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		dur := time.Since(start)
		// One counter bump, one histogram observe, one ring write — all
		// preregistered, no allocation beyond the strings the request
		// already owns.
		ep := s.met.endpoint(r.URL.Path)
		ep.classes[classIdx(status)].Inc()
		ep.lat.Observe(dur)
		s.accessLog.Add(obs.Record{
			Time:           start,
			Method:         r.Method,
			Path:           r.URL.Path,
			RequestID:      id,
			Status:         status,
			DurationMicros: dur.Microseconds(),
		})
		s.cfg.Logf("server: %s %s %d %.1fms rid=%s", r.Method, r.URL.Path, status,
			float64(dur.Microseconds())/1000, id)
	})
}

// withRecovery converts a handler panic into a logged stack plus a 500 —
// when the handler had not yet written a header — without touching the
// process or concurrent requests. net/http would recover a panicking
// handler goroutine anyway (killing just that connection), but it logs an
// opaque line and, for a half-written response, leaves the client to infer
// the failure; recovering here keeps the failure shaped like every other
// error: typed, logged with the request id, answered with JSON.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw, _ := w.(*statusWriter)
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			// http.ErrAbortHandler is the sanctioned "drop this connection"
			// panic (e.g. from a ResponseWriter after a client vanished);
			// re-raising keeps net/http's handling for it.
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.cfg.Logf("server: panic rid=%s: %v\n%s", requestIDFrom(r.Context()), v, debug.Stack())
			if sw == nil || sw.status == 0 {
				writeJSON(w, http.StatusInternalServerError, errorResponse{
					Error:     "internal error",
					RequestID: requestIDFrom(r.Context()),
				})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// engineEndpoint wraps an engine-calling handler with the admission gate,
// the body-size limit, and the per-request timeout. POST only.
func (s *Server) engineEndpoint(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only", RequestID: requestIDFrom(r.Context())})
			return
		}
		// A pending server (engine still booting — WAL replay, snapshot
		// download) sheds engine traffic immediately: /healthz already says
		// not-ready, this is the backstop for clients that skipped it.
		if s.engine() == nil {
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{
				Error:     "booting: engine not ready",
				RequestID: requestIDFrom(r.Context()),
			})
			return
		}
		// Admission: non-blocking acquire. Shedding before reading the body
		// keeps the rejection cost flat however large the overload.
		select {
		case s.admit <- struct{}{}:
		default:
			s.shed.Add(1)
			s.met.shed.Inc()
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{
				Error:     "overloaded, retry later",
				RequestID: requestIDFrom(r.Context()),
			})
			return
		}
		defer func() { <-s.admit }()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)

		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if hook := testRequestHook.Load(); hook != nil {
			(*hook)(r)
		}
		h(w, r)
	})
}

// testRequestHook, when non-nil, runs after admission and before the
// handler — the test seam lifecycle tests use to hold a request in flight
// or make it panic deterministically. Atomic because handler goroutines
// read it with no other synchronization against the test's store.
var testRequestHook atomic.Pointer[func(*http.Request)]

// requestTimeout resolves a request's deadline: timeout_ms from the body
// when given (clamped to MaxTimeout), Config.RequestTimeout otherwise.
func (s *Server) requestTimeout(ms int64) time.Duration {
	if ms <= 0 {
		return s.cfg.RequestTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// decodeBody decodes the request body into v, mapping the failure shapes
// clients actually produce — oversized bodies, malformed JSON, unknown
// fields — onto ErrBadQuery so writeError answers 400/413 coherently.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return tooLarge
		}
		return badRequestf("decoding request body: %v", err)
	}
	return nil
}
