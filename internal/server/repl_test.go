package server

// Tests for the replication-era serving surface: liveness vs readiness,
// pending (engine-less) boot, the /v1/repl endpoints and their status
// contract, X-Min-Epoch read-your-writes, the read-only follower
// stance, and the honest jittered Retry-After.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/wal"
)

// durableTestEngine builds a WAL-backed engine over dir so the repl
// endpoints have something to export.
func durableTestEngine(t *testing.T, dir string) *notable.Engine {
	t.Helper()
	eng, _, err := notable.NewDurableEngine(testGraph(), notable.Options{
		ContextSize: 6, Walks: 5000, Seed: 3,
	}, notable.Durability{WALDir: dir, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// applyN applies n distinct effective batches starting at workload
// index start (indices must not repeat — a repeated add is a no-op and
// publishes no epoch), returning the final epoch.
func applyN(t *testing.T, eng *notable.Engine, start, n int) uint64 {
	t.Helper()
	var ep uint64
	for i := start; i < start+n; i++ {
		var err error
		ep, err = eng.ApplyTriples(context.Background(), []notable.Triple{
			{S: "Angela Merkel", P: "visited", O: fmt.Sprintf("Country-%d", i)},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	return ep
}

func getJSON(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding %s body: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestLivenessVsReadiness: /livez answers 200 through every lifecycle
// state while /healthz tracks fitness to serve — booting 503, ready
// 200, explicit not-ready 503 with epochs.
func TestLivenessVsReadiness(t *testing.T) {
	s := NewPending(quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := getJSON(t, ts, "/livez"); code != http.StatusOK {
		t.Fatalf("livez while booting: %d", code)
	}
	code, body := getJSON(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable || body["status"] != "booting" {
		t.Fatalf("healthz while booting: %d %v", code, body)
	}

	// Engine set but explicitly behind its floor: still not ready, with
	// progress epochs for the operator.
	s.SetEngine(testEngine(notable.Options{}))
	s.SetReadiness(Readiness{Ready: false, Status: "catching-up", Epoch: 3, Target: 9})
	code, body = getJSON(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable || body["status"] != "catching-up" ||
		body["epoch"] != float64(3) || body["target"] != float64(9) {
		t.Fatalf("healthz while catching up: %d %v", code, body)
	}
	if code, _ := getJSON(t, ts, "/livez"); code != http.StatusOK {
		t.Fatalf("livez while catching up: %d", code)
	}

	s.SetReadiness(Readiness{Ready: true})
	code, body = getJSON(t, ts, "/healthz")
	if code != http.StatusOK || body["ready"] != true {
		t.Fatalf("healthz when ready: %d %v", code, body)
	}
}

// TestPendingEngineEndpoints: engine traffic against a booting server
// sheds with 503 + Retry-After instead of hanging or crashing, and
// /statsz still serves process gauges with booting:true.
func TestPendingEngineEndpoints(t *testing.T) {
	s := NewPending(quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{
		"entities": []string{"Angela Merkel"},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("search while booting: %d %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After on booting 503")
	}
	code, body := getJSON(t, ts, "/statsz")
	if code != http.StatusOK || body["booting"] != true {
		t.Fatalf("statsz while booting: %d %v", code, body)
	}
}

// TestReadOnlyIngest: a follower-stance server refuses ingest with 403
// (a permanent property, not a retryable 503 — the client must go to
// the primary).
func TestReadOnlyIngest(t *testing.T) {
	cfg := quietCfg()
	cfg.ReadOnly = true
	s := New(testEngine(notable.Options{}), cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", map[string]any{
		"adds": []map[string]string{{"s": "a", "p": "b", "o": "c"}},
	})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("ingest on read-only replica: %d %s", resp.StatusCode, data)
	}
	// Reads still flow.
	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{
		"entities": []string{"Angela Merkel", "Barack Obama"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search on read-only replica: %d %s", resp.StatusCode, data)
	}
}

// TestMinEpoch: the read-your-writes gate — immediate pass at or above
// the floor, bounded wait for a lagging engine, honest 503 with
// Retry-After and X-Replica-Epoch on timeout, 400 on garbage.
func TestMinEpoch(t *testing.T) {
	cfg := quietCfg()
	cfg.MinEpochWait = 300 * time.Millisecond
	eng := testEngine(notable.Options{})
	s := New(eng, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(minEpoch string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/search",
			strings.NewReader(`{"entities":["Angela Merkel","Barack Obama"]}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if minEpoch != "" {
			req.Header.Set("X-Min-Epoch", minEpoch)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp, data
	}

	if resp, data := post("0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("min-epoch 0 at epoch 0: %d %s", resp.StatusCode, data)
	}
	if resp, data := post("bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed min-epoch: %d %s", resp.StatusCode, data)
	}

	// Timeout: the engine never reaches epoch 99 — a bounded wait, then
	// 503 with the replica's actual epoch so the router can decide.
	start := time.Now()
	resp, data := post("99")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unreachable min-epoch: %d %s", resp.StatusCode, data)
	}
	if d := time.Since(start); d < cfg.MinEpochWait {
		t.Fatalf("503 came after %v, before the %v wait elapsed", d, cfg.MinEpochWait)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("X-Replica-Epoch") != "0" {
		t.Fatalf("timeout 503 headers: Retry-After=%q X-Replica-Epoch=%q",
			resp.Header.Get("Retry-After"), resp.Header.Get("X-Replica-Epoch"))
	}

	// Wait-then-pass: the engine catches up mid-wait and the request
	// completes with the epoch floor in the response.
	go func() {
		time.Sleep(50 * time.Millisecond)
		_, _ = eng.ApplyTriples(context.Background(), []notable.Triple{
			{S: "Angela Merkel", P: "visited", O: "Atlantis"},
		}, nil)
	}()
	resp, data = post("1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("min-epoch 1 after catch-up: %d %s", resp.StatusCode, data)
	}
	var sr searchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Epoch < 1 {
		t.Fatalf("response epoch %d below the requested floor 1", sr.Epoch)
	}
}

// TestReplEndpointsContract: snapshot and stream against a durable
// primary, plus every error status a follower keys off — 405 on POST,
// 409 ahead-of-primary, 410 truncated, 501 not-a-primary.
func TestReplEndpointsContract(t *testing.T) {
	eng := durableTestEngine(t, t.TempDir())
	head := applyN(t, eng, 0, 3)
	s := New(eng, quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Snapshot: octet-stream with its epoch, decodable into a graph.
	resp, err := ts.Client().Get(ts.URL + "/v1/repl/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snapEpoch, err := strconv.ParseUint(resp.Header.Get("X-Repl-Epoch"), 10, 64)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d, epoch header err %v", resp.StatusCode, err)
	}
	if _, err := notable.ReadSnapshot(resp.Body); err != nil {
		t.Fatalf("snapshot body does not decode: %v", err)
	}
	resp.Body.Close()
	if snapEpoch > head {
		t.Fatalf("snapshot epoch %d past head %d", snapEpoch, head)
	}

	// Stream from 0: the full tail, ending with the durable head.
	sctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(sctx, http.MethodGet, ts.URL+"/v1/repl/stream?from=0", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream from 0: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Repl-Epoch"); got != strconv.FormatUint(head, 10) {
		t.Fatalf("stream durable header %q, want %d", got, head)
	}
	fr := wal.NewFrameReader(resp.Body)
	recs := make(chan wal.Record, 8)
	go func() {
		for {
			rec, err := fr.Next()
			if err != nil {
				close(recs)
				return
			}
			recs <- rec
		}
	}()
	for want := uint64(1); want <= head; want++ {
		select {
		case rec := <-recs:
			if rec.Epoch != want {
				t.Fatalf("stream record epoch %d, want %d", rec.Epoch, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("stream never delivered epoch %d", want)
		}
	}
	// Live tail: an ingest published after connect shows up on the same
	// stream.
	applyN(t, eng, 3, 1)
	select {
	case rec := <-recs:
		if rec.Epoch != head+1 {
			t.Fatalf("live stream record epoch %d, want %d", rec.Epoch, head+1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream never delivered the live record")
	}
	cancel()

	// Status contract.
	if resp, err := ts.Client().Post(ts.URL+"/v1/repl/stream", "", nil); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST on stream: %d", resp.StatusCode)
	}
	if resp, err := ts.Client().Get(ts.URL + "/v1/repl/stream?from=999"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusConflict {
		t.Fatalf("from past durable: %d, want 409", resp.StatusCode)
	}
	if resp, err := ts.Client().Get(ts.URL + "/v1/repl/stream?from=nope"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage from: %d, want 400", resp.StatusCode)
	}

	// Truncation: two checkpoints push the retention floor past epoch 1.
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyN(t, eng, 4, 1)
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if resp, err := ts.Client().Get(ts.URL + "/v1/repl/stream?from=1"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusGone {
		t.Fatalf("truncated position: %d, want 410", resp.StatusCode)
	}

	// Not a primary: an in-memory engine has nothing to ship.
	s2 := New(testEngine(notable.Options{}), quietCfg())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if resp, err := ts2.Client().Get(ts2.URL + "/v1/repl/snapshot"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("snapshot on non-durable engine: %d, want 501", resp.StatusCode)
	}
}

// TestDrainEndsReplStream: a live stream terminates promptly when the
// server drains, so Shutdown is not held to its deadline by followers.
func TestDrainEndsReplStream(t *testing.T) {
	eng := durableTestEngine(t, t.TempDir())
	applyN(t, eng, 0, 1)
	cfg := quietCfg()
	cfg.DrainTimeout = 3 * time.Second
	s := New(eng, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/v1/repl/stream?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", resp.StatusCode)
	}
	// Begin the drain while the stream idles between heartbeats.
	start := time.Now()
	cancel()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil && !strings.Contains(err.Error(), "EOF") {
		t.Logf("stream body ended with: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(cfg.DrainTimeout + 2*time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if d := time.Since(start); d > cfg.DrainTimeout {
		t.Fatalf("drain with a live stream took %v (deadline %v)", d, cfg.DrainTimeout)
	}
}

// TestRetryAfterJitter: the jittered seconds stay within ±20% of the
// base (rounded up) and never go below 1.
func TestRetryAfterJitter(t *testing.T) {
	for i := 0; i < 200; i++ {
		got, err := strconv.Atoi(retryAfterSeconds(10 * time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if got < 8 || got > 12 {
			t.Fatalf("retryAfterSeconds(10s) = %d, want [8,12]", got)
		}
	}
	for i := 0; i < 50; i++ {
		if got, _ := strconv.Atoi(retryAfterSeconds(100 * time.Millisecond)); got < 1 {
			t.Fatalf("retryAfterSeconds(100ms) = %d, want ≥ 1", got)
		}
	}
}
