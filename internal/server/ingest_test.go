package server

// /v1/ingest tests: live mutations over HTTP — epoch advance, statsz
// gauges, search reflecting the new triples, error mapping, and
// concurrent searches racing ingests.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro"
)

func getStatsz(t *testing.T, ts *httptest.Server) statszResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestIngestEndpoint: a triple batch advances the epoch, shows up in
// /statsz, and changes what /v1/search answers — all without a restart.
func TestIngestEndpoint(t *testing.T) {
	s := New(testEngine(notable.Options{}), quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if st := getStatsz(t, ts); st.GraphEpoch != 0 {
		t.Fatalf("fresh server at epoch %d", st.GraphEpoch)
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", map[string]any{
		"adds": []map[string]string{
			{"s": "Angela Merkel", "p": "awarded", "o": "Nobel Prize"},
			{"s": "Barack Obama", "p": "awarded", "o": "Nobel Prize"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, data)
	}
	var ir ingestResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Epoch != 1 || ir.OverlayAdds == 0 {
		t.Fatalf("ingest response = %+v", ir)
	}
	st := getStatsz(t, ts)
	if st.GraphEpoch != 1 || st.OverlayAdds == 0 {
		t.Fatalf("statsz after ingest = epoch %d, overlay_adds %d", st.GraphEpoch, st.OverlayAdds)
	}

	// The new label is part of the very next search's report.
	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{
		"entities": []string{"Angela Merkel", "Barack Obama"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d: %s", resp.StatusCode, data)
	}
	var sr searchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, c := range sr.Characteristics {
		if c.Label == "awarded" {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("ingested label missing from search report: %s", data)
	}

	// The new node resolves by name too.
	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{
		"entities": []string{"Nobel Prize", "Angela Merkel"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search with new node: status %d: %s", resp.StatusCode, data)
	}

	// Deleting the triples bumps the epoch again.
	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/ingest", map[string]any{
		"dels": []map[string]string{
			{"s": "Barack Obama", "p": "awarded", "o": "Nobel Prize"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete ingest status %d: %s", resp.StatusCode, data)
	}
	if st := getStatsz(t, ts); st.GraphEpoch != 2 {
		t.Fatalf("epoch after delete = %d, want 2", st.GraphEpoch)
	}
}

// TestIngestErrorMapping: malformed batches answer 400 and leave the
// graph untouched.
func TestIngestErrorMapping(t *testing.T) {
	s := New(testEngine(notable.Options{}), quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body any
	}{
		{"empty batch", map[string]any{}},
		{"empty field", map[string]any{
			"adds": []map[string]string{{"s": "", "p": "met", "o": "x"}},
		}},
		{"unknown field", map[string]any{
			"adds":    []map[string]string{{"s": "a", "p": "b", "o": "c"}},
			"triples": []string{"nope"},
		}},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, data)
		}
	}
	if st := getStatsz(t, ts); st.GraphEpoch != 0 {
		t.Fatalf("rejected batches moved the epoch to %d", st.GraphEpoch)
	}

	// GET is not allowed.
	resp, err := ts.Client().Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/ingest: status %d, want 405", resp.StatusCode)
	}
}

// TestIngestConcurrentWithSearch races searches against ingests through
// the full HTTP stack: every search must answer 200 with a non-empty
// result whichever epoch it pinned.
func TestIngestConcurrentWithSearch(t *testing.T) {
	s := New(testEngine(notable.Options{CompactThreshold: 4}), quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{
					"entities": []string{"Angela Merkel", "Barack Obama"},
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("search during ingest: status %d: %s", resp.StatusCode, data)
					return
				}
				var sr searchResponse
				if err := json.Unmarshal(data, &sr); err != nil {
					t.Error(err)
					return
				}
				if len(sr.Context) == 0 {
					t.Error("empty context during ingest")
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", map[string]any{
			"adds": []map[string]string{
				{"s": "Angela Merkel", "p": "visited", "o": "Country " + string(rune('A'+i))},
			},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	close(stop)
	wg.Wait()
	if st := getStatsz(t, ts); st.GraphEpoch != 5 {
		t.Fatalf("epoch after 5 ingests = %d", st.GraphEpoch)
	}
}
