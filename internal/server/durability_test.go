package server

// Durability at the HTTP layer: ingest refused with 503 + Retry-After
// while draining, and /statsz's WAL gauges reflecting a durable engine
// across a restart.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
)

// TestIngestRefusedWhileDraining: a draining node must not accept a
// write it may never persist; clients get 503 with a Retry-After hint
// while reads keep draining normally.
func TestIngestRefusedWhileDraining(t *testing.T) {
	s := New(testEngine(notable.Options{}), quietCfg())
	s.draining.Store(true)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", map[string]any{
		"adds": []map[string]string{{"s": "Angela Merkel", "p": "awarded", "o": "Nobel Prize"}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest while draining: status %d: %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive hint", ra)
	}
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error == "" {
		t.Fatalf("no error body: %s", data)
	}
	// The refused batch must not have touched the graph.
	if st := getStatsz(t, ts); st.GraphEpoch != 0 {
		t.Fatalf("refused ingest moved the epoch to %d", st.GraphEpoch)
	}
	// Reads are still served while draining (they ride the drain window).
	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{
		"entities": []string{"Angela Merkel", "Barack Obama"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search while draining: status %d: %s", resp.StatusCode, data)
	}
}

// TestStatszWALGauges: a durable engine surfaces its WAL through
// /statsz, and a restart over the same directory reports the replayed
// records.
func TestStatszWALGauges(t *testing.T) {
	dir := t.TempDir()
	opt := notable.Options{ContextSize: 6, Walks: 5000, Seed: 3}
	eng, _, err := notable.NewDurableEngine(testGraph(), opt, notable.Durability{
		WALDir: dir, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, quietCfg())
	ts := httptest.NewServer(s.Handler())

	if st := getStatsz(t, ts); !st.WALEnabled || st.WALRecords != 0 {
		t.Fatalf("fresh durable engine: %+v", st)
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", map[string]any{
		"adds": []map[string]string{{"s": "Angela Merkel", "p": "awarded", "o": "Nobel Prize"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, data)
	}
	st := getStatsz(t, ts)
	if st.WALRecords != 1 || st.WALBytes == 0 || st.RecoveredRecords != 0 {
		t.Fatalf("after one durable ingest: %+v", st)
	}
	ts.Close()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory: the batch is recovered and the
	// gauges say so.
	eng2, info, err := notable.NewDurableEngine(testGraph(), opt, notable.Durability{
		WALDir: dir, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if info.RecordsReplayed != 1 || info.Epoch != 1 {
		t.Fatalf("restart recovered %+v", info)
	}
	s2 := New(eng2, quietCfg())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	st = getStatsz(t, ts2)
	if !st.WALEnabled || st.RecoveredRecords != 1 || st.GraphEpoch != 1 {
		t.Fatalf("statsz after restart: %+v", st)
	}

	// Non-durable engines report the gauges off.
	s3 := New(testEngine(notable.Options{}), quietCfg())
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	if st := getStatsz(t, ts3); st.WALEnabled || st.WALBytes != 0 {
		t.Fatalf("non-durable engine reports WAL gauges: %+v", st)
	}
}
