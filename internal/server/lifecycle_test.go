// Lifecycle tests: the four robustness pillars exercised end to end over
// real connections — graceful drain under SIGTERM, straggler cancellation
// past the drain deadline, panic isolation, load shedding, and stream
// client disconnects. All of them drive the server through the
// testRequestHook seam in engineEndpoint, which lets a test hold a request
// in flight (or blow it up) at a deterministic point.
package server

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro"
)

// reply is one HTTP exchange's outcome, channel-friendly for requests
// issued from goroutines.
type reply struct {
	status     int
	body       []byte
	retryAfter string
	err        error
}

// doPost posts a JSON body and drains the response.
func doPost(url, body string, hdr map[string]string) reply {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return reply{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return reply{err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return reply{status: resp.StatusCode, err: err}
	}
	return reply{status: resp.StatusCode, body: data, retryAfter: resp.Header.Get("Retry-After")}
}

// setHook installs a testRequestHook for the test's duration.
func setHook(t *testing.T, fn func(*http.Request)) {
	t.Helper()
	testRequestHook.Store(&fn)
	t.Cleanup(func() { testRequestHook.Store(nil) })
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

const searchBody = `{"entities":["Angela Merkel","Barack Obama"]}`

// TestGracefulDrain: a real SIGTERM with a request in flight. The
// in-flight request completes with 200, /healthz flips to draining, new
// connections are refused, and Serve returns nil.
func TestGracefulDrain(t *testing.T) {
	s := New(testEngine(notable.Options{}), quietCfg())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The same ctx wiring ncserved uses: NotifyContext catches the signal
	// so the test binary survives it.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	entered := make(chan struct{})
	release := make(chan struct{})
	setHook(t, func(r *http.Request) {
		if r.Header.Get("X-Test-Block") != "" {
			entered <- struct{}{}
			<-release
		}
	})

	base := "http://" + ln.Addr().String()
	got := make(chan reply, 1)
	go func() {
		got <- doPost(base+"/v1/search", searchBody, map[string]string{"X-Test-Block": "1"})
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked request never reached the handler")
	}

	// Request in flight: deliver the signal.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "server to start draining", s.Draining)

	// /healthz answers draining so load balancers stop routing.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("healthz while draining: %d %s", rec.Code, rec.Body.String())
	}

	// The listener closes: new connections are refused while the old
	// request still runs.
	waitUntil(t, 5*time.Second, "listener to close", func() bool {
		c, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond)
		if err != nil {
			return true
		}
		c.Close()
		return false
	})
	if s.InFlight() != 1 {
		t.Fatalf("in-flight gauge = %d during drain, want 1", s.InFlight())
	}

	// Let the in-flight request finish: it must complete normally.
	close(release)
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight request: status %d (%s)", r.status, r.body)
		}
		var sr searchResponse
		if err := json.Unmarshal(r.body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Degraded || len(sr.Characteristics) == 0 {
			t.Fatalf("in-flight request returned a damaged result: %s", r.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after a clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if s.InFlight() != 0 {
		t.Fatalf("in-flight gauge = %d after drain", s.InFlight())
	}
}

// TestDrainDeadlineCancelsStragglers: a request that outlives
// DrainTimeout has its context cancelled — the server exits promptly
// instead of wedging on a stuck handler.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	cfg := quietCfg()
	cfg.DrainTimeout = 100 * time.Millisecond
	s := New(testEngine(notable.Options{}), cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	entered := make(chan struct{})
	setHook(t, func(r *http.Request) {
		if r.Header.Get("X-Test-Hold") != "" {
			entered <- struct{}{}
			// A straggler: holds until the drain path cancels its ctx. The
			// timer is a leak guard, not an expected path.
			select {
			case <-r.Context().Done():
			case <-time.After(10 * time.Second):
			}
		}
	})

	base := "http://" + ln.Addr().String()
	got := make(chan reply, 1)
	go func() {
		got <- doPost(base+"/v1/search", searchBody, map[string]string{"X-Test-Hold": "1"})
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler never reached the handler")
	}

	start := time.Now()
	cancel()

	// The straggler's handler runs Do with a cancelled ctx and answers 499
	// (or the connection dies under the force-close fallback — both are
	// acceptable ends for a request that overstayed the drain deadline).
	select {
	case r := <-got:
		if r.err == nil && r.status != statusClientClosedRequest {
			t.Fatalf("straggler answered %d (%s), want %d or a dead connection",
				r.status, r.body, statusClientClosedRequest)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("straggler request never resolved")
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after straggler cancellation")
	}
	// The whole drain — 100ms deadline plus response flush — stays far
	// under the straggler's own 10s hold.
	if d := time.Since(start); d > 4*time.Second {
		t.Fatalf("drain with straggler took %v", d)
	}
}

// TestPanicIsolation: a panicking handler answers 500 with the request id
// while a concurrent request completes untouched and the server keeps
// serving afterwards.
func TestPanicIsolation(t *testing.T) {
	s := New(testEngine(notable.Options{}), quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	setHook(t, func(r *http.Request) {
		switch {
		case r.Header.Get("X-Test-Panic") != "":
			panic("kaboom: injected test panic")
		case r.Header.Get("X-Test-Block") != "":
			entered <- struct{}{}
			<-release
		}
	})

	// Park a healthy request in flight.
	got := make(chan reply, 1)
	go func() {
		got <- doPost(ts.URL+"/v1/search", searchBody, map[string]string{"X-Test-Block": "1"})
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked request never reached the handler")
	}

	// Blow up a second request next to it.
	pr := doPost(ts.URL+"/v1/search", searchBody, map[string]string{"X-Test-Panic": "1"})
	if pr.err != nil {
		t.Fatalf("panic request: %v", pr.err)
	}
	if pr.status != http.StatusInternalServerError {
		t.Fatalf("panic request: status %d (%s)", pr.status, pr.body)
	}
	var er errorResponse
	if err := json.Unmarshal(pr.body, &er); err != nil {
		t.Fatalf("panic response is not JSON: %q", pr.body)
	}
	if er.Error != "internal error" || er.RequestID == "" {
		t.Fatalf("panic response: %+v", er)
	}

	// The concurrent request never noticed.
	close(release)
	select {
	case r := <-got:
		if r.err != nil || r.status != http.StatusOK {
			t.Fatalf("concurrent request: status %d err %v", r.status, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent request never completed")
	}

	// And the process is still in business.
	if r := doPost(ts.URL+"/v1/search", searchBody, nil); r.err != nil || r.status != http.StatusOK {
		t.Fatalf("post-panic request: status %d err %v", r.status, r.err)
	}
}

// TestLoadShedding: with the gate saturated, excess requests get an
// immediate 503 + Retry-After while the admitted request is untouched;
// non-engine endpoints stay reachable; the slot frees on completion.
func TestLoadShedding(t *testing.T) {
	cfg := quietCfg()
	cfg.MaxInFlight = 1
	s := New(testEngine(notable.Options{}), cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	setHook(t, func(r *http.Request) {
		if r.Header.Get("X-Test-Block") != "" {
			entered <- struct{}{}
			<-release
		}
	})

	got := make(chan reply, 1)
	go func() {
		got <- doPost(ts.URL+"/v1/search", searchBody, map[string]string{"X-Test-Block": "1"})
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked request never reached the handler")
	}

	// Saturated: the next request is shed fast, before its body is read.
	start := time.Now()
	shed := doPost(ts.URL+"/v1/search", searchBody, nil)
	elapsed := time.Since(start)
	if shed.err != nil || shed.status != http.StatusServiceUnavailable {
		t.Fatalf("shed request: status %d err %v", shed.status, shed.err)
	}
	if shed.retryAfter == "" {
		t.Fatalf("shed response carries no Retry-After")
	}
	if elapsed > time.Second {
		t.Fatalf("shedding took %v, want an immediate rejection", elapsed)
	}
	if n := s.shed.Load(); n == 0 {
		t.Fatal("shed counter did not move")
	}

	// Health and stats live outside the gate.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", hr.StatusCode)
	}

	// The admitted request completes as if the shedding never happened,
	// and its slot frees the gate.
	close(release)
	select {
	case r := <-got:
		if r.err != nil || r.status != http.StatusOK {
			t.Fatalf("admitted request: status %d err %v", r.status, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admitted request never completed")
	}
	if r := doPost(ts.URL+"/v1/search", searchBody, nil); r.err != nil || r.status != http.StatusOK {
		t.Fatalf("post-release request: status %d err %v", r.status, r.err)
	}
}

// TestStreamDisconnectCancels: a streaming client that drops mid-batch
// cancels the request context, the engine work winds down, and no
// goroutines leak.
func TestStreamDisconnectCancels(t *testing.T) {
	// Heavy Monte-Carlo engine: each query runs for seconds, so the
	// disconnect reliably lands while the first query is still computing.
	eng := testEngine(notable.Options{TestExactLimit: 1, TestSamples: 3_000_000, Parallelism: 2})
	s := New(eng, quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctxCh := make(chan context.Context, 1)
	setHook(t, func(r *http.Request) {
		select {
		case ctxCh <- r.Context():
		default:
		}
	})

	before := runtime.NumGoroutine()

	body := `{"queries":[
		{"entities":["Angela Merkel","Barack Obama"]},
		{"entities":["Vladimir Putin","Xi Jinping"]},
		{"entities":["Justin Trudeau","Shinzo Abe"]}]}`
	resp, err := http.Post(ts.URL+"/v1/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rctx context.Context
	select {
	case rctx = <-ctxCh:
	case <-time.After(5 * time.Second):
		t.Fatal("hook never saw the stream request")
	}

	// Drop the connection while the batch is mid-flight.
	resp.Body.Close()

	select {
	case <-rctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client disconnect did not cancel the request context")
	}

	// Everything spawned for the request — conn goroutine, DoStream
	// producer, comparison workers — winds down.
	waitUntil(t, 10*time.Second, "request to leave the in-flight gauge", func() bool {
		return s.InFlight() == 0
	})
	waitUntil(t, 10*time.Second, "goroutines to settle after disconnect", func() bool {
		return runtime.NumGoroutine() <= before+2
	})

	// The server is still healthy.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after disconnect: %d", hr.StatusCode)
	}
}
