package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro"
	"repro/internal/obs"
)

// scrape GETs /metrics and returns the body, failing on any non-200 or
// wrong content type.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue sums every sample of the named family (with an optional
// label-substring filter) in a scrape.
func metricValue(t *testing.T, body, name, labelSub string) float64 {
	t.Helper()
	var total float64
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") || !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != '{' && rest[0] != ' ' {
			continue // longer family name sharing the prefix
		}
		if labelSub != "" && !strings.Contains(line, labelSub) {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		total += v
	}
	return total
}

// TestMetricsEndpoint: the exposition parses, covers the engine's stage
// and request families plus the server's per-endpoint counters, and the
// request counter is monotone across scrapes.
func TestMetricsEndpoint(t *testing.T) {
	s := New(testEngine(notable.Options{}), quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{
		"entities": []string{"Angela Merkel", "Barack Obama"},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d: %s", resp.StatusCode, data)
	}

	body := scrape(t, ts)
	// Structural check: every sample line is "name[{labels}] value".
	for ln, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			t.Fatalf("line %d unparseable: %q", ln+1, line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("line %d bad value: %q", ln+1, line)
		}
	}
	// The engine families ride the same scrape as the server's.
	for _, want := range []string{
		`nc_stage_seconds_count{stage="ctx_select"}`,
		`nc_stage_seconds_count{stage="compare"}`,
		`nc_stage_seconds_count{stage="ppr_solve"}`,
		`nc_request_seconds_count{op="do"}`,
		"nc_wal_fsync_seconds_count",
		"nc_http_shed_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %s", want)
		}
	}
	if got := metricValue(t, body, "nc_stage_seconds_count", `stage="compare"`); got < 1 {
		t.Errorf("compare stage count = %v after one search", got)
	}

	before := metricValue(t, body, "nc_http_requests_total", `path="/v1/search"`)
	if resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{
		"entities": []string{"Angela Merkel", "Barack Obama"},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("second search status %d: %s", resp.StatusCode, data)
	}
	after := metricValue(t, scrape(t, ts), "nc_http_requests_total", `path="/v1/search"`)
	if after <= before {
		t.Fatalf("request counter not monotone: %v -> %v", before, after)
	}
}

// TestMetricsEndpointPending: a booting server (no engine) still serves
// its own registry.
func TestMetricsEndpointPending(t *testing.T) {
	s := NewPending(quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := scrape(t, ts)
	if !strings.Contains(body, "nc_http_requests_total") {
		t.Fatal("pending server scrape missing nc_http_requests_total")
	}
	if strings.Contains(body, "nc_stage_seconds") {
		t.Fatal("pending server scrape carries engine families with no engine set")
	}
}

// TestLogzEndpoint: requests land in the ring with their id and status;
// ?n= bounds the tail; the drain is non-consuming.
func TestLogzEndpoint(t *testing.T) {
	s := New(testEngine(notable.Options{}), quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{
		"entities": []string{"Angela Merkel", "Barack Obama"},
	})
	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err == nil {
		resp.Body.Close()
	}

	get := func(url string) logzResponse {
		t.Helper()
		resp, err := ts.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("logz status %d", resp.StatusCode)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("logz Cache-Control %q", cc)
		}
		var lr logzResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
		return lr
	}

	lr := get(ts.URL + "/v1/logz")
	if len(lr.Records) < 2 {
		t.Fatalf("expected ≥2 records, got %d", len(lr.Records))
	}
	var sawSearch bool
	for _, rec := range lr.Records {
		if rec.Path == "/v1/search" && rec.Status == http.StatusOK && rec.RequestID != "" {
			sawSearch = true
		}
	}
	if !sawSearch {
		t.Fatalf("no /v1/search record in %+v", lr.Records)
	}

	if got := get(ts.URL + "/v1/logz?n=1"); len(got.Records) != 1 {
		t.Fatalf("n=1 returned %d records", len(got.Records))
	}
	// Non-consuming: the same tail (plus the logz hits themselves) is
	// still there.
	if again := get(ts.URL + "/v1/logz"); len(again.Records) < len(lr.Records) {
		t.Fatalf("drain consumed the ring: %d then %d", len(lr.Records), len(again.Records))
	}
}

// TestStatszMetricsKey: /statsz carries the histogram summaries under
// "metrics" and the no-store header.
func TestStatszMetricsKey(t *testing.T) {
	s := New(testEngine(notable.Options{}), quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{
		"entities": []string{"Angela Merkel", "Barack Obama"},
	})
	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("statsz Cache-Control %q", cc)
	}
	var body struct {
		Metrics map[string]obs.Summary `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	do, ok := body.Metrics["nc_request_seconds"]
	if !ok {
		t.Fatalf("statsz metrics missing nc_request_seconds: %v", body.Metrics)
	}
	if do.Count < 1 || do.P50MS <= 0 {
		t.Fatalf("implausible summary after one search: %+v", do)
	}
	if _, ok := body.Metrics["nc_http_request_seconds"]; !ok {
		t.Fatal("statsz metrics missing the server-side nc_http_request_seconds")
	}
}
