package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
)

// testGraph is the leaders fixture: small enough that a search is
// sub-millisecond, structured enough that studied/hasChild come out
// notable.
func testGraph() *notable.Graph {
	b := notable.NewBuilder(128)
	leaders := []string{"Angela Merkel", "Barack Obama", "Vladimir Putin",
		"Matteo Renzi", "François Hollande", "David Cameron", "Xi Jinping",
		"Justin Trudeau", "Shinzo Abe", "Dilma Rousseff"}
	for i, l := range leaders {
		b.SetType(l, "politician")
		b.AddEdge(l, "memberOf", "G20")
		b.AddEdge(l, "attended", "Summit")
		for d := 1; d <= 3; d++ {
			b.AddEdge(l, "met", leaders[(i+d)%len(leaders)])
		}
		if l == "Angela Merkel" {
			b.AddEdge(l, "studied", "Physics")
			continue
		}
		b.AddEdge(l, "studied", "Law")
		b.AddEdge(l, "hasChild", "Child of "+l)
	}
	return b.Build()
}

func testEngine(opt notable.Options) *notable.Engine {
	if opt.ContextSize == 0 {
		opt.ContextSize = 6
	}
	if opt.Walks == 0 {
		opt.Walks = 5000
	}
	if opt.Seed == 0 {
		opt.Seed = 3
	}
	return notable.NewEngine(testGraph(), opt)
}

// quietCfg silences logs and shrinks timeouts for tests; individual tests
// override fields.
func quietCfg() Config {
	return Config{
		Logf:           func(string, ...any) {},
		RequestTimeout: 5 * time.Second,
		DrainTimeout:   5 * time.Second,
	}
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestSearchEndpoint: a plain search answers 200 with the flattened
// result, a request id, and degraded=false.
func TestSearchEndpoint(t *testing.T) {
	s := New(testEngine(notable.Options{}), quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{
		"entities": []string{"Angela Merkel", "Barack Obama"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no X-Request-ID header")
	}
	var sr searchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Degraded {
		t.Fatal("uncut search marked degraded")
	}
	if len(sr.Context) == 0 || len(sr.Characteristics) == 0 {
		t.Fatalf("empty result: %s", data)
	}
	if sr.Tested != sr.Total || sr.Tested != len(sr.Characteristics) {
		t.Fatalf("tested/total %d/%d with %d records", sr.Tested, sr.Total, len(sr.Characteristics))
	}
	names := map[string]bool{}
	for _, c := range sr.Characteristics {
		names[c.Label] = true
	}
	if !names["studied"] && !names["hasChild"] {
		t.Fatalf("expected studied/hasChild in report: %s", data)
	}

	// Inbound request ids are honored end to end.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/search",
		strings.NewReader(`{"entities":["Angela Merkel","Barack Obama"]}`))
	req.Header.Set("X-Request-ID", "test-rid-42")
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "test-rid-42" {
		t.Fatalf("request id not echoed: %q", got)
	}
}

// TestErrorMapping: typed library errors and request-shape failures map
// to the right statuses — never a generic 500.
func TestErrorMapping(t *testing.T) {
	cfg := quietCfg()
	cfg.MaxBodyBytes = 512
	s := New(testEngine(notable.Options{}), cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{"malformed JSON", "/v1/search", `{"entities": [`, http.StatusBadRequest},
		{"unknown field", "/v1/search", `{"entitees": ["X"]}`, http.StatusBadRequest},
		{"empty query", "/v1/search", `{}`, http.StatusBadRequest},
		{"bad override", "/v1/search", `{"entities":["Angela Merkel"],"top_k":-1}`, http.StatusBadRequest},
		{"bad alpha", "/v1/search", `{"entities":["Angela Merkel"],"alpha":1.5}`, http.StatusBadRequest},
		{"node id out of range", "/v1/search", `{"nodes":[999999]}`, http.StatusBadRequest},
		{"empty batch", "/v1/batch", `{"queries":[]}`, http.StatusBadRequest},
		{"oversized body", "/v1/search", `{"entities":["` + strings.Repeat("x", 600) + `"]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := client.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
		}
	}

	// Unresolved entities: 400 carrying the missing names.
	resp, data := postJSON(t, client, ts.URL+"/v1/search", map[string]any{
		"entities": []string{"Angela Merkel", "Zzyzx Nobody"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unresolved: status %d", resp.StatusCode)
	}
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Missing) != 1 || er.Missing[0] != "Zzyzx Nobody" {
		t.Fatalf("missing = %v", er.Missing)
	}

	// GET on an engine endpoint: 405 with Allow.
	getResp, err := client.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed || getResp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("GET: status %d allow %q", getResp.StatusCode, getResp.Header.Get("Allow"))
	}
}

// TestBatchAndStreamEndpoints: the batch answer preserves order; the
// stream carries one NDJSON line per query with per-query error
// isolation.
func TestBatchAndStreamEndpoints(t *testing.T) {
	s := New(testEngine(notable.Options{}), quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := map[string]any{"queries": []map[string]any{
		{"entities": []string{"Angela Merkel", "Barack Obama"}},
		{"entities": []string{"Vladimir Putin"}, "top_k": 2},
	}}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var br batchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("%d results", len(br.Results))
	}
	if got := br.Results[1].Query; len(got) != 1 || got[0] != "Vladimir Putin" {
		t.Fatalf("order lost: result 1 query = %v", got)
	}
	if len(br.Results[1].Characteristics) > 2 {
		t.Fatalf("top_k=2 ignored: %d records", len(br.Results[1].Characteristics))
	}

	// Stream: a bad query mid-batch becomes one error line, not a dead
	// connection.
	streamBody := map[string]any{"queries": []map[string]any{
		{"entities": []string{"Angela Merkel", "Barack Obama"}},
		{"top_k": -1, "entities": []string{"Angela Merkel"}},
		{"entities": []string{"Vladimir Putin"}},
	}}
	buf, _ := json.Marshal(streamBody)
	sresp, err := ts.Client().Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	seen := map[int]streamOutcome{}
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		var o streamOutcome
		if err := json.Unmarshal(sc.Bytes(), &o); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		seen[o.Index] = o
	}
	if len(seen) != 3 {
		t.Fatalf("%d outcomes, want 3", len(seen))
	}
	if seen[1].Error == "" || !strings.Contains(seen[1].Error, "TopK") {
		t.Fatalf("outcome 1 error = %q, want a TopK validation error", seen[1].Error)
	}
	for _, i := range []int{0, 2} {
		if seen[i].Error != "" || seen[i].Result == nil || len(seen[i].Result.Characteristics) == 0 {
			t.Fatalf("outcome %d = %+v, want a completed result", i, seen[i])
		}
	}
}

// TestStatszEndpoint: the stats payload carries the gauges an operator
// tunes by — executor width, cache layers, in-flight — and they move.
func TestStatszEndpoint(t *testing.T) {
	s := New(testEngine(notable.Options{}), quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{"entities": []string{"Angela Merkel"}})
	getResp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var st statszResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Executor.Workers < 1 {
		t.Fatalf("executor workers = %d", st.Executor.Workers)
	}
	if st.MaxInFlight < 1 || st.Draining || st.InFlight != 0 {
		t.Fatalf("gauges: %+v", st)
	}
	if st.Cache.Size == 0 {
		t.Fatalf("cache shows no residency after a search: %s", data)
	}
	if st.Goroutines < 1 || st.UptimeSeconds < 0 {
		t.Fatalf("process stats: %+v", st)
	}
}

// TestDegradedHTTP: a deadline that lands mid-comparison yields HTTP 200
// with degraded=true and a non-empty prefix of the full report — and with
// "degrade": false, a 504 instead.
func TestDegradedHTTP(t *testing.T) {
	// Force every label test through Monte-Carlo sampling with a heavy
	// budget so the comparison stage takes seconds while selection stays
	// sub-millisecond: the deadline reliably lands mid-comparison.
	eng := testEngine(notable.Options{TestExactLimit: 1, TestSamples: 3_000_000, Parallelism: 2})
	s := New(eng, quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Full report size, measured without a deadline, for the subset check.
	full, data := postJSON(t, ts.Client(), ts.URL+"/v1/search", map[string]any{
		"entities": []string{"Angela Merkel", "Barack Obama"},
	})
	if full.StatusCode != http.StatusOK {
		t.Fatalf("full: status %d: %s", full.StatusCode, data)
	}
	var fullResp searchResponse
	if err := json.Unmarshal(data, &fullResp); err != nil {
		t.Fatal(err)
	}
	fullByLabel := map[string]wireCharacteristic{}
	for _, c := range fullResp.Characteristics {
		fullByLabel[c.Label] = c
	}

	// Cold-cache engine for the degraded run: the warm one would answer
	// instantly. Same options, fresh process state.
	eng2 := testEngine(notable.Options{TestExactLimit: 1, TestSamples: 3_000_000, Parallelism: 2})
	s2 := New(eng2, quietCfg())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	resp, data := postJSON(t, ts2.Client(), ts2.URL+"/v1/search", map[string]any{
		"entities":   []string{"Angela Merkel", "Barack Obama"},
		"timeout_ms": 250,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded: status %d: %s", resp.StatusCode, data)
	}
	var dr searchResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Degraded {
		t.Fatalf("deadline-cut response not degraded: %s", data)
	}
	if dr.Tested == 0 || len(dr.Characteristics) == 0 {
		t.Fatalf("degraded response carries no partial work: %s", data)
	}
	if dr.Tested >= dr.Total || dr.Total != len(fullResp.Characteristics) {
		t.Fatalf("tested/total = %d/%d, full report has %d", dr.Tested, dr.Total, len(fullResp.Characteristics))
	}
	for _, c := range dr.Characteristics {
		fc, ok := fullByLabel[c.Label]
		if !ok {
			t.Fatalf("degraded label %q absent from full report", c.Label)
		}
		if c != fc {
			t.Fatalf("degraded record for %q differs from the full run:\n  got  %+v\n  want %+v", c.Label, c, fc)
		}
	}

	// Opting out of degradation turns the same cut into a 504.
	eng3 := testEngine(notable.Options{TestExactLimit: 1, TestSamples: 3_000_000, Parallelism: 2})
	s3 := New(eng3, quietCfg())
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	resp3, data3 := postJSON(t, ts3.Client(), ts3.URL+"/v1/search", map[string]any{
		"entities":   []string{"Angela Merkel", "Barack Obama"},
		"timeout_ms": 250,
		"degrade":    false,
	})
	if resp3.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("degrade=false: status %d: %s", resp3.StatusCode, data3)
	}
}

// TestHealthz: plain ok before any drain.
func TestHealthz(t *testing.T) {
	s := New(testEngine(notable.Options{}), quietCfg())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, data)
	}
}

// degradedSanity guards the timing assumption the degraded tests lean on:
// the heavy Monte-Carlo engine really is slow enough that 250ms cannot
// finish the whole report. Run it first when debugging flakes.
func TestDegradedTimingSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing probe")
	}
	eng := testEngine(notable.Options{TestExactLimit: 1, TestSamples: 3_000_000, Parallelism: 2})
	start := time.Now()
	nodes, err := eng.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Do(nil, notable.Query{Nodes: nodes}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < time.Second {
		t.Fatalf("full heavy search took only %v; degraded tests' 250ms deadline is too close", d)
	}
}
