// The three engine endpoints and their wire types. The JSON surface
// deliberately exposes the request-scoped library API one-to-one: a wire
// query is a notable.Query plus name resolution, a response is a
// notable.Result flattened to what clients render (names and scores, not
// internal distributions).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro"
)

// wireQuery is one query as clients send it. Entities (names, resolved
// fuzzily like ncsearch) and Nodes (raw graph ids) may be mixed; at least
// one of the two must be non-empty. The override fields mirror
// notable.Query: zero means "inherit the engine's option".
type wireQuery struct {
	Entities    []string         `json:"entities,omitempty"`
	Nodes       []notable.NodeID `json:"nodes,omitempty"`
	ContextSize int              `json:"context_size,omitempty"`
	Selector    string           `json:"selector,omitempty"`
	Alpha       float64          `json:"alpha,omitempty"`
	TopK        int              `json:"top_k,omitempty"`
	Policy      string           `json:"policy,omitempty"`
	TestSamples int              `json:"test_samples,omitempty"`
	Parallelism int              `json:"parallelism,omitempty"`
	Walks       int              `json:"walks,omitempty"`
	Damping     float64          `json:"damping,omitempty"`
	// Degrade opts into deadline-degraded mode. Omitted means true: a
	// serving deadline should degrade a response, not destroy it. Send
	// false to get a 504 instead of a partial 200.
	Degrade *bool `json:"degrade,omitempty"`
}

// searchRequest is the /v1/search body: one wireQuery plus the request
// deadline.
type searchRequest struct {
	wireQuery
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// batchRequest is the /v1/batch and /v1/stream body. The timeout spans
// the whole batch.
type batchRequest struct {
	Queries   []wireQuery `json:"queries"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
}

// wireContextItem is one scored context node.
type wireContextItem struct {
	ID    uint32  `json:"id"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// wireCharacteristic is one tested label, flattened for rendering.
type wireCharacteristic struct {
	Label     string  `json:"label"`
	Score     float64 `json:"score"`
	Kind      string  `json:"kind"`
	Notable   bool    `json:"notable"`
	InstP     float64 `json:"inst_p"`
	CardP     float64 `json:"card_p"`
	InstScore float64 `json:"inst_score"`
	CardScore float64 `json:"card_score"`
}

// searchResponse is one completed (or degraded) search on the wire.
type searchResponse struct {
	RequestID string `json:"request_id,omitempty"`
	// Epoch is a floor on the graph epoch this result was computed at:
	// the engine's epoch read just before the search pinned its view (the
	// pinned epoch is ≥ it, and ≥ any X-Min-Epoch the request carried).
	// Clients thread it back as X-Min-Epoch for read-your-writes across
	// replicas.
	Epoch uint64 `json:"epoch"`
	// Degraded marks a deadline-cut result: Characteristics holds the
	// labels tested before the cut (Tested of Total), a prefix-consistent
	// subset of the full report.
	Degraded        bool                 `json:"degraded"`
	Tested          int                  `json:"tested"`
	Total           int                  `json:"total"`
	ElapsedMS       float64              `json:"elapsed_ms"`
	Query           []string             `json:"query"`
	Context         []wireContextItem    `json:"context"`
	Characteristics []wireCharacteristic `json:"characteristics"`
}

// batchResponse is the /v1/batch answer: one entry per query, in order.
type batchResponse struct {
	RequestID string `json:"request_id,omitempty"`
	// Epoch is the batch-wide floor (see searchResponse.Epoch).
	Epoch     uint64           `json:"epoch"`
	ElapsedMS float64          `json:"elapsed_ms"`
	Results   []searchResponse `json:"results"`
}

// streamOutcome is one NDJSON line of /v1/stream: the query's index in
// the request, then either an error or its result.
type streamOutcome struct {
	Index  int             `json:"index"`
	Error  string          `json:"error,omitempty"`
	Result *searchResponse `json:"result,omitempty"`
}

// toQuery resolves a wireQuery into a notable.Query: entity names through
// the engine's fuzzy resolver, raw node ids validated against the graph.
func (s *Server) toQuery(wq wireQuery) (notable.Query, error) {
	eng := s.engine()
	nodes := make([]notable.NodeID, 0, len(wq.Nodes)+len(wq.Entities))
	numNodes := eng.Graph().NumNodes()
	for _, id := range wq.Nodes {
		if int(id) >= numNodes {
			return notable.Query{}, badRequestf("node id %d out of range (graph has %d nodes)", id, numNodes)
		}
		nodes = append(nodes, id)
	}
	if len(wq.Entities) > 0 {
		resolved, err := eng.Resolve(wq.Entities...)
		if err != nil {
			return notable.Query{}, err
		}
		nodes = append(nodes, resolved...)
	}
	degrade := wq.Degrade == nil || *wq.Degrade
	return notable.Query{
		Nodes:       nodes,
		ContextSize: wq.ContextSize,
		Selector:    wq.Selector,
		Alpha:       wq.Alpha,
		TopK:        wq.TopK,
		Policy:      wq.Policy,
		TestSamples: wq.TestSamples,
		Parallelism: wq.Parallelism,
		Walks:       wq.Walks,
		Damping:     wq.Damping,
		Degrade:     degrade,
	}, nil
}

// toResponse flattens a result for the wire. de is nil for a full
// result; epoch is the floor read before the search pinned its view.
func (s *Server) toResponse(res notable.Result, de *notable.DegradedError, elapsed time.Duration, rid string, epoch uint64) searchResponse {
	g := s.engine().Graph()
	out := searchResponse{
		RequestID: rid,
		Epoch:     epoch,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Tested:    len(res.Characteristics),
		Total:     len(res.Characteristics),
	}
	if de != nil {
		out.Degraded = true
		out.Tested = de.Tested
		out.Total = de.Total
	}
	out.Query = make([]string, len(res.Query))
	for i, id := range res.Query {
		out.Query[i] = g.NodeName(id)
	}
	out.Context = make([]wireContextItem, len(res.Context))
	for i, it := range res.Context {
		out.Context[i] = wireContextItem{ID: it.ID, Name: g.NodeName(notable.NodeID(it.ID)), Score: it.Score}
	}
	out.Characteristics = make([]wireCharacteristic, len(res.Characteristics))
	for i, c := range res.Characteristics {
		out.Characteristics[i] = wireCharacteristic{
			Label:     c.Name,
			Score:     c.Score,
			Kind:      c.Kind.String(),
			Notable:   c.Notable(),
			InstP:     c.InstP,
			CardP:     c.CardP,
			InstScore: c.InstScore,
			CardScore: c.CardScore,
		}
	}
	return out
}

// awaitMinEpoch enforces a request's X-Min-Epoch header — the
// read-your-writes floor a client (or the router, on its behalf) sets
// from a previous write's acked epoch. A replica already at or past the
// floor proceeds immediately; one behind it waits up to
// Config.MinEpochWait for replay to catch up, then answers 503 with
// Retry-After and X-Replica-Epoch so the router retries a replica that
// is caught up. Returns false when it wrote the response itself.
func (s *Server) awaitMinEpoch(w http.ResponseWriter, r *http.Request, eng *notable.Engine) bool {
	h := r.Header.Get("X-Min-Epoch")
	if h == "" {
		return true
	}
	min, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		s.writeError(w, r, badRequestf("bad X-Min-Epoch %q: %v", h, err))
		return false
	}
	if eng.Epoch() >= min {
		return true
	}
	// Poll rather than subscribe: a replica's epoch advances from its
	// follower loop, and 5ms granularity is far below any client-visible
	// latency bound while keeping the engine seam untouched.
	deadline := time.Now().Add(s.cfg.MinEpochWait)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			s.writeError(w, r, r.Context().Err())
			return false
		case <-tick.C:
		}
		if eng.Epoch() >= min {
			return true
		}
		if !time.Now().Before(deadline) {
			break
		}
	}
	cur := eng.Epoch()
	w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	w.Header().Set("X-Replica-Epoch", strconv.FormatUint(cur, 10))
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error:     fmt.Sprintf("replica at epoch %d, behind requested minimum %d", cur, min),
		RequestID: requestIDFrom(r.Context()),
	})
	return false
}

// handleSearch serves POST /v1/search: one query under one deadline,
// degraded by default rather than erroring when the deadline lands in the
// comparison stage.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	q, err := s.toQuery(req.wireQuery)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	eng := s.engine()
	if !s.awaitMinEpoch(w, r, eng) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMS))
	defer cancel()
	// The epoch floor travels in the response: Do pins a view at least
	// this new (epochs only grow), so the result is correct at some epoch
	// ≥ floor ≥ the request's min epoch.
	floor := eng.Epoch()
	start := time.Now()
	res, err := eng.Do(ctx, q)
	var de *notable.DegradedError
	if err != nil && !errors.As(err, &de) {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, s.toResponse(res, de, time.Since(start), requestIDFrom(r.Context()), floor))
}

// handleBatch serves POST /v1/batch: the whole batch in one deduplicated
// pass, all-or-nothing (use /v1/stream for per-query failure isolation).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, r, badRequestf("empty batch"))
		return
	}
	qs := make([]notable.Query, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := s.toQuery(wq)
		if err != nil {
			s.writeError(w, r, badRequestf("query %d: %v", i, err))
			return
		}
		qs[i] = q
	}
	eng := s.engine()
	if !s.awaitMinEpoch(w, r, eng) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMS))
	defer cancel()
	floor := eng.Epoch()
	start := time.Now()
	results, err := eng.DoBatch(ctx, qs)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	elapsed := time.Since(start)
	rid := requestIDFrom(r.Context())
	resp := batchResponse{RequestID: rid, Epoch: floor, ElapsedMS: float64(elapsed.Microseconds()) / 1000}
	resp.Results = make([]searchResponse, len(results))
	for i, res := range results {
		resp.Results[i] = s.toResponse(res, nil, elapsed, "", floor)
	}
	writeJSON(w, http.StatusOK, resp)
}

// wireTriple is one (subject, predicate, object) fact on the wire.
type wireTriple struct {
	S string `json:"s"`
	P string `json:"p"`
	O string `json:"o"`
}

// ingestRequest is the /v1/ingest body: triples to add and delete, one
// atomic batch. Deletes apply before adds, exactly like
// notable.Engine.ApplyTriples.
type ingestRequest struct {
	Adds      []wireTriple `json:"adds,omitempty"`
	Dels      []wireTriple `json:"dels,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

// ingestResponse reports the batch's outcome: the epoch now current
// (unchanged when the batch had no effect) and the live store's overlay
// state afterwards.
type ingestResponse struct {
	RequestID   string  `json:"request_id,omitempty"`
	Epoch       uint64  `json:"epoch"`
	OverlayAdds int     `json:"overlay_adds"`
	OverlayDels int     `json:"overlay_dels"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// toTriples converts wire triples, rejecting nothing — field validation
// (empty s/p/o) belongs to ApplyTriples so the error surface is one.
func toTriples(ws []wireTriple) []notable.Triple {
	if len(ws) == 0 {
		return nil
	}
	ts := make([]notable.Triple, len(ws))
	for i, w := range ws {
		ts[i] = notable.Triple{S: w.S, P: w.P, O: w.O}
	}
	return ts
}

// handleIngest serves POST /v1/ingest: applies one triple batch to the
// live graph and publishes it as a new epoch, without a restart and
// without interrupting in-flight searches (they finish on the epoch they
// pinned). Malformed triples reject the whole batch with 400 and leave
// the graph untouched.
//
// A draining server refuses writes outright with 503 + Retry-After:
// searches in flight get to finish, but a process about to exit must not
// accept a batch it may never persist (with a WAL the ack would still be
// honest, but the client should already be talking to a live node).
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ReadOnly {
		writeJSON(w, http.StatusForbidden, errorResponse{
			Error:     "read-only replica: ingest goes to the primary",
			RequestID: requestIDFrom(r.Context()),
		})
		return
	}
	if s.draining.Load() {
		// The honest hint: this listener is gone once the drain budget runs
		// out, so that (plus jitter, so a fleet of retriers spreads out) is
		// the soonest a retry against this address can land.
		w.Header().Set("Retry-After", retryAfterSeconds(s.drainRetryAfter()))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error:     "draining: not accepting writes",
			RequestID: requestIDFrom(r.Context()),
		})
		return
	}
	eng := s.engine()
	var req ingestRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	if len(req.Adds) == 0 && len(req.Dels) == 0 {
		s.writeError(w, r, badRequestf("empty ingest: no adds or dels"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMS))
	defer cancel()
	start := time.Now()
	epoch, err := eng.ApplyTriples(ctx, toTriples(req.Adds), toTriples(req.Dels))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	st := eng.VersionStats()
	writeJSON(w, http.StatusOK, ingestResponse{
		RequestID:   requestIDFrom(r.Context()),
		Epoch:       epoch,
		OverlayAdds: st.OverlayAdds,
		OverlayDels: st.OverlayDels,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
	})
}

// handleStream serves POST /v1/stream: NDJSON, one streamOutcome per
// query in completion order, flushed as each lands. A client that
// disconnects cancels the request ctx; the engine stops within one sweep
// or label test and the remaining outcomes are dropped with the
// connection.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, r, badRequestf("empty batch"))
		return
	}
	qs := make([]notable.Query, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := s.toQuery(wq)
		if err != nil {
			s.writeError(w, r, badRequestf("query %d: %v", i, err))
			return
		}
		qs[i] = q
	}
	eng := s.engine()
	if !s.awaitMinEpoch(w, r, eng) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMS))
	defer cancel()

	floor := eng.Epoch()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // Encode appends the NDJSON newline
	start := time.Now()
	for o := range eng.DoStream(ctx, qs) {
		line := streamOutcome{Index: o.Index}
		if o.Err != nil {
			line.Error = o.Err.Error()
		} else {
			resp := s.toResponse(o.Result, nil, time.Since(start), "", floor)
			line.Result = &resp
		}
		if err := enc.Encode(line); err != nil {
			// The client is gone. Cancel the batch — the engine stops within
			// one sweep or label test — and walk away: DoStream's channel is
			// fully buffered, so an abandoned consumer leaks nothing.
			cancel()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
