package notable

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/qcache"
)

// refineSteps is an interactive session over the leaders graph: each
// query differs from its predecessor by roughly one entity — adds,
// removals, a permutation, and one revisit.
func refineSteps(t testing.TB, e *Engine) [][]NodeID {
	t.Helper()
	ids, err := e.Resolve("Angela Merkel", "Barack Obama", "Vladimir Putin",
		"Matteo Renzi", "François Hollande", "David Cameron")
	if err != nil {
		t.Fatal(err)
	}
	// No permuted revisits here: the selector layer intentionally serves
	// one canonical vector per entity set, whose low-order bits may differ
	// from a cold solve in the permuted fold order — pinned separately by
	// TestEngineRefinePermutation.
	return [][]NodeID{
		{ids[0], ids[1]},
		{ids[0], ids[1], ids[2]},         // +1
		{ids[0], ids[1], ids[2], ids[3]}, // +1
		{ids[1], ids[2], ids[3]},         // -1
		{ids[1], ids[3]},                 // -1
		{ids[1], ids[2], ids[3], ids[4]}, // +1 (and one re-add)
		{ids[4], ids[5]},                 // mostly new
		{ids[0], ids[1], ids[2]},         // revisit
	}
}

// TestEngineRefineMatchesColdSearch is the refinement fast path's
// acceptance invariant: walking an interactive session on one warm
// engine returns, at every step, exactly — DeepEqual on the full Result —
// what a cache-disabled engine computes cold, for every Parallelism and
// seed-cache budget combination: disabled (negative), tiny (forcing
// evictions mid-sequence), and ample (the default). Monte-Carlo testing
// is forced so the null-distribution memo is exercised end to end too.
func TestEngineRefineMatchesColdSearch(t *testing.T) {
	g := buildLeaders()
	base := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3,
		TestSamples: 300, TestExactLimit: 1}
	for _, par := range []int{1, 4} {
		opt := base
		opt.Parallelism = par
		coldOpt := opt
		coldOpt.CacheSize = -1
		cold := NewEngine(g, coldOpt)
		steps := refineSteps(t, cold)
		want := make([]Result, len(steps))
		for i, q := range steps {
			r, err := cold.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = r
		}
		for name, budget := range map[string]int64{"disabled": -1, "tiny": 600, "ample": 0} {
			wopt := opt
			wopt.SeedCacheBytes = budget
			warm := NewEngine(g, wopt)
			for i, q := range steps {
				got, err := warm.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want[i]) {
					t.Fatalf("par=%d budget=%s: refinement step %d differs from cold search", par, name, i)
				}
			}
			st := warm.CacheStats()
			seed := st.Layers[qcache.LayerSeed]
			switch name {
			case "disabled":
				if seed.Hits+seed.Misses != 0 || st.SeedBytes != 0 {
					t.Fatalf("par=%d: disabled seed layer saw traffic: %+v", par, st)
				}
			case "tiny":
				if st.Evictions == 0 {
					t.Fatalf("par=%d: tiny seed budget must evict mid-sequence: %+v", par, st)
				}
				if seed.Hits == 0 {
					t.Fatalf("par=%d: tiny budget should still hit retained seeds: %+v", par, st)
				}
			case "ample":
				if seed.Hits == 0 || seed.Misses == 0 {
					t.Fatalf("par=%d: seed layer not exercised: %+v", par, st)
				}
				// Six distinct entities appear across the session; each is
				// solved at most once per appearance set under an ample
				// budget (the revisit and permutation are pure hits).
				if seed.Misses > 6 {
					t.Fatalf("par=%d: ample budget re-solved a seed: %+v", par, st)
				}
				if st.Layers[qcache.LayerNull].Hits == 0 {
					t.Fatalf("par=%d: null-distribution memo never hit: %+v", par, st)
				}
			}
		}
	}
}

// TestEngineRefinePermutation pins the permuted-revisit semantics: a
// warm engine answers a permutation of a cached query from the selector
// layer with the entity set's canonical score vector, so the context and
// characteristics match the original order's result exactly (only the
// echoed Query order differs). The seed layer alone — selector caching
// off is not directly expressible, so this is asserted against the first
// order's warm result, which the cold-equality test already pinned.
func TestEngineRefinePermutation(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 300})
	ids, err := e.Resolve("Angela Merkel", "Barack Obama", "Vladimir Putin")
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.Search([]NodeID{ids[0], ids[1], ids[2]})
	if err != nil {
		t.Fatal(err)
	}
	perm, err := e.Search([]NodeID{ids[2], ids[0], ids[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(perm.Context, first.Context) {
		t.Fatal("permuted revisit changed the context")
	}
	if !reflect.DeepEqual(perm.Characteristics, first.Characteristics) {
		t.Fatal("permuted revisit changed the characteristics")
	}
}

// TestEngineRefineSearchBatchConsistency: mixing the batched path into a
// refinement session — warm the engine per query, then re-run the whole
// session as one SearchBatch — stays bitwise identical and solve-free.
func TestEngineRefineSearchBatchConsistency(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 300}
	e := NewEngine(g, opt)
	steps := refineSteps(t, e)
	want := make([]Result, len(steps))
	for i, q := range steps {
		r, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	missesBefore := e.CacheStats().Misses
	got, err := e.SearchBatch(steps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("warm batch differs from the sequential session")
	}
	if st := e.CacheStats(); st.Misses != missesBefore {
		t.Fatalf("warm batch re-missed: %+v", st)
	}
}

// BenchmarkEngineRefineSearch is the refinement fast path's acceptance
// benchmark: one Search that adds a previously unseen entity to a warm
// 3-actor query, against the same 4-entity query on a cache-disabled
// engine (cold). Every iteration refines with a different entity (cycling
// a 1024-node pool, far beyond any -benchtime used here), so the refined
// query itself is never served from the selector layer — the fast path
// under test is the per-seed vector reuse plus the null-distribution
// memo, not query repetition. Testing runs in the Monte-Carlo regime
// (TestExactLimit 1), the bounded-latency serving configuration the
// null memo targets; exact enumeration is order-dependent and legally
// unmemoizable, so it dilutes both sides equally. Acceptance: refine
// ≥3x lower ns/op than cold.
func BenchmarkEngineRefineSearch(b *testing.B) {
	d := gen.YAGOLike(gen.YAGOConfig{Seed: benchSeed, Scale: benchScale})
	g := d.Graph
	g.Transitions()
	base, err := d.Scenario("actors").QueryIDs(g, 3)
	if err != nil {
		b.Fatal(err)
	}
	inBase := map[NodeID]bool{}
	for _, s := range base {
		inBase[s] = true
	}
	// A deterministic pool of refinement entities spread over the graph.
	var pool []NodeID
	n := uint64(g.NumNodes())
	for i := uint64(1); len(pool) < 1024; i++ {
		id := NodeID((i * 2654435761) % n)
		if !inBase[id] {
			pool = append(pool, id)
		}
	}
	opt := Options{
		ContextSize:    30,
		Selector:       SelectorRandomWalk,
		Seed:           benchSeed,
		TestSamples:    20000,
		TestExactLimit: 1,
	}
	query := func(i int) []NodeID {
		return append(append([]NodeID(nil), base...), pool[i%len(pool)])
	}
	b.Run("refine", func(b *testing.B) {
		e := NewEngine(g, opt)
		if _, err := e.Search(base); err != nil {
			b.Fatal(err) // warm the 3 base seeds and their null distributions
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Search(query(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		coldOpt := opt
		coldOpt.CacheSize = -1
		e := NewEngine(g, coldOpt)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Search(query(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
