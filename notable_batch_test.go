package notable

import (
	"reflect"
	"testing"

	"repro/internal/gen"
)

// leaderQueries builds n deterministic, heavily overlapping queries over
// the leaders graph — sizes 1..4, including one query with a duplicated
// node (the uncacheable selector case).
func leaderQueries(t testing.TB, e *Engine, n int) [][]NodeID {
	t.Helper()
	names := []string{"Angela Merkel", "Barack Obama", "Vladimir Putin",
		"Matteo Renzi", "François Hollande", "David Cameron", "Xi Jinping",
		"Justin Trudeau", "Shinzo Abe", "Dilma Rousseff"}
	ids, err := e.Resolve(names...)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]NodeID, n)
	for i := range queries {
		size := 1 + i%4
		q := make([]NodeID, size)
		for j := range q {
			q[j] = ids[(i+j*j)%len(ids)]
		}
		if i == 2 && size >= 2 {
			q[1] = q[0] // duplicated node: bypasses the selector cache
		}
		queries[i] = q
	}
	return queries
}

// searchSequential runs Search per query on e.
func searchSequential(t testing.TB, e *Engine, queries [][]NodeID) []Result {
	t.Helper()
	out := make([]Result, len(queries))
	for i, q := range queries {
		r, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

// TestSearchBatchMatchesSequentialBitwise is the batch pipeline's
// acceptance invariant: for every batch size and Parallelism, SearchBatch
// on a fresh engine returns exactly — bitwise, via DeepEqual on the full
// Result records — what per-query Search calls on an equally fresh engine
// return. Covers the score-caching selector path (RandomWalk, whose batch
// solve is the multi-source kernel), with and without the cache.
func TestSearchBatchMatchesSequentialBitwise(t *testing.T) {
	g := buildLeaders()
	base := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500}
	for _, batchSize := range []int{1, 3, 16} {
		for _, par := range []int{1, 4} {
			opt := base
			opt.Parallelism = par
			seqEng := NewEngine(g, opt)
			queries := leaderQueries(t, seqEng, batchSize)
			want := searchSequential(t, seqEng, queries)

			batchEng := NewEngine(g, opt)
			got, err := batchEng.SearchBatch(queries)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("batch=%d par=%d: batched results differ from sequential", batchSize, par)
			}

			// Cacheless engines must agree too — the batch path's solver
			// dedup does not depend on the cache.
			opt.CacheSize = -1
			coldEng := NewEngine(g, opt)
			cold, err := coldEng.SearchBatch(queries)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cold, want) {
				t.Fatalf("batch=%d par=%d: cacheless batch differs", batchSize, par)
			}
		}
	}
}

// TestSearchBatchDefaultSelector: the default ContextRW selector has no
// batched solve — SelectBatch falls back per query — and must still match
// sequential exactly.
func TestSearchBatchDefaultSelector(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 6, Walks: 20000, Seed: 3, TestSamples: 500}
	seqEng := NewEngine(g, opt)
	queries := leaderQueries(t, seqEng, 5)
	want := searchSequential(t, seqEng, queries)
	batchEng := NewEngine(g, opt)
	got, err := batchEng.SearchBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("ContextRW batch differs from sequential")
	}
}

// TestSearchBatchWarmEngine: a batch against a fully warm engine is pure
// cache hits — no selector misses — and identical output.
func TestSearchBatchWarmEngine(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500}
	e := NewEngine(g, opt)
	queries := leaderQueries(t, e, 6)
	want := searchSequential(t, e, queries)
	missesBefore := e.CacheStats().Misses
	got, err := e.SearchBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("warm batch differs from sequential")
	}
	if st := e.CacheStats(); st.Misses != missesBefore {
		// The duplicate-node query bypasses the cache and recomputes; it
		// must not register as a miss either.
		t.Fatalf("warm batch missed the cache: %+v", st)
	}
}

// TestSearchBatchEmptyQuery: empty queries are rejected up front, naming
// the offending index.
func TestSearchBatchEmptyQuery(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{})
	if _, err := e.SearchBatch([][]NodeID{{1}, {}}); err == nil {
		t.Fatal("empty query in batch should error")
	}
	if res, err := e.SearchBatch(nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
}

// TestEngineCacheByteBudget: the facade's CacheBytes bound evicts under
// byte pressure and CacheStats reports per-layer residency.
func TestEngineCacheByteBudget(t *testing.T) {
	g := buildLeaders()
	unbounded := NewEngine(g, Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500})
	queries := leaderQueries(t, unbounded, 6)
	searchSequential(t, unbounded, queries)
	full := unbounded.CacheStats()
	if full.SelectorBytes == 0 || full.TestBytes == 0 || full.SeedBytes == 0 {
		t.Fatalf("expected the selector, test, and seed layers to report bytes: %+v", full)
	}
	if full.Bytes != full.SelectorBytes+full.TestBytes+full.SeedBytes+full.NullBytes {
		t.Fatalf("Bytes must total the layers: %+v", full)
	}

	budget := full.Bytes / 4
	bounded := NewEngine(g, Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3,
		TestSamples: 500, CacheBytes: budget})
	searchSequential(t, bounded, queries)
	st := bounded.CacheStats()
	if st.ByteBudget != budget {
		t.Fatalf("ByteBudget = %d, want %d", st.ByteBudget, budget)
	}
	if st.Bytes > budget {
		t.Fatalf("resident %d bytes exceeds budget %d", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatal("byte budget at a quarter of working set must evict")
	}
	// And the budget must not change any result.
	want := searchSequential(t, unbounded, queries)
	got := searchSequential(t, bounded, queries)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("byte-budgeted engine returned different results")
	}
}

// BenchmarkSearchBatch is the batched cold path's acceptance benchmark:
// one SearchBatch over 8 distinct overlapping queries against 8
// sequential cold Search calls with identical options. The mix is a
// profile sweep over the actors cohort — every size-5 subset, the full
// set, and one truncation — the batch-entity-profiling / eval-sweep
// workload the batch path exists for, where queries share most of their
// seeds. Caches are disabled on both sides so every query is genuinely
// cold; the batch side's advantage is structural — each distinct seed
// solved once instead of once per query — not cache state.
func BenchmarkSearchBatch(b *testing.B) {
	d := gen.YAGOLike(gen.YAGOConfig{Seed: benchSeed, Scale: benchScale})
	g := d.Graph
	g.Transitions()
	opt := Options{
		ContextSize:    30,
		Selector:       SelectorRandomWalk,
		Seed:           benchSeed,
		CacheSize:      -1,
		TestSamples:    500,
		TestExactLimit: 5000,
	}
	e := NewEngine(g, opt)
	cohort, err := d.Scenario("actors").QueryIDs(g, 6)
	if err != nil {
		b.Fatal(err)
	}
	var queries [][]NodeID
	for drop := 0; drop < len(cohort); drop++ {
		q := make([]NodeID, 0, len(cohort)-1)
		for i, id := range cohort {
			if i != drop {
				q = append(q, id)
			}
		}
		queries = append(queries, q)
	}
	queries = append(queries, cohort, cohort[:4])
	b.Run("b=1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.SearchBatch(queries[:1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("b=8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.SearchBatch(queries); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(queries)), "ns/query")
	})
	b.Run("sequential8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := e.Search(q); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(queries)), "ns/query")
	})
}
