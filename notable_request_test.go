package notable

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/qcache"
)

// TestDoMatchesSearchBitwise: for equal engine options and no overrides,
// Do is bitwise identical to the deprecated Search — across selectors and
// cache states.
func TestDoMatchesSearchBitwise(t *testing.T) {
	g := buildLeaders()
	for _, sel := range []string{SelectorRandomWalk, SelectorContextRW} {
		for _, cacheSize := range []int{0, -1} {
			opt := Options{ContextSize: 6, Selector: sel, Walks: 20000, Seed: 3,
				TestSamples: 500, CacheSize: cacheSize}
			searchEng := NewEngine(g, opt)
			queries := leaderQueries(t, searchEng, 4)
			want := searchSequential(t, searchEng, queries)

			doEng := NewEngine(g, opt)
			for i, q := range queries {
				got, err := doEng.Do(context.Background(), Query{Nodes: q})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want[i]) {
					t.Fatalf("sel=%s cache=%d: Do(%d) differs from Search", sel, cacheSize, i)
				}
			}
		}
	}
}

// TestDoOverridesMatchEngineOptions: a per-request override must produce
// exactly what an engine configured with that option produces — for every
// overridable field.
func TestDoOverridesMatchEngineOptions(t *testing.T) {
	g := buildLeaders()
	base := Options{ContextSize: 6, Walks: 20000, Seed: 3, TestSamples: 500}
	e := NewEngine(g, base)
	nodes, err := e.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		q    Query
		opt  func(Options) Options
	}{
		{"ContextSize", Query{ContextSize: 4}, func(o Options) Options { o.ContextSize = 4; return o }},
		{"Selector", Query{Selector: SelectorRandomWalk}, func(o Options) Options { o.Selector = SelectorRandomWalk; return o }},
		{"Alpha", Query{Alpha: 0.2}, func(o Options) Options { o.Alpha = 0.2; return o }},
		{"Policy", Query{Policy: PolicyPooled}, func(o Options) Options { o.Policy = PolicyPooled; return o }},
		{"TestSamples", Query{TestSamples: 750}, func(o Options) Options { o.TestSamples = 750; return o }},
		{"Parallelism", Query{Parallelism: 2}, func(o Options) Options { o.Parallelism = 2; return o }},
	}
	for _, tc := range cases {
		q := tc.q
		q.Nodes = nodes
		got, err := NewEngine(g, base).Do(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := NewEngine(g, tc.opt(base)).Search(nodes)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s override differs from engine-level option", tc.name)
		}
	}
}

// TestDoTopK: the TopK cut truncates the ranked characteristics and
// nothing else.
func TestDoTopK(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{ContextSize: 6, Walks: 20000, Seed: 3, TestSamples: 500})
	nodes, err := e.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.Do(context.Background(), Query{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Characteristics) < 3 {
		t.Skipf("only %d characteristics; fixture too small", len(full.Characteristics))
	}
	cut, err := e.Do(context.Background(), Query{Nodes: nodes, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Characteristics) != 2 {
		t.Fatalf("TopK=2 returned %d characteristics", len(cut.Characteristics))
	}
	if !reflect.DeepEqual(cut.Characteristics, full.Characteristics[:2]) {
		t.Fatal("TopK cut is not the prefix of the full ranking")
	}
	if !reflect.DeepEqual(cut.Context, full.Context) {
		t.Fatal("TopK changed the context")
	}
	// A cut beyond the tested label count is a no-op.
	big, err := e.Do(context.Background(), Query{Nodes: nodes, TopK: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(big, full) {
		t.Fatal("oversized TopK changed the result")
	}
}

// TestDoBatchMatchesSearchBatchBitwise: with no overrides, DoBatch is the
// same batched pass as the deprecated SearchBatch.
func TestDoBatchMatchesSearchBatchBitwise(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500}
	oldEng := NewEngine(g, opt)
	queries := leaderQueries(t, oldEng, 6)
	want, err := oldEng.SearchBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	newEng := NewEngine(g, opt)
	qs := make([]Query, len(queries))
	for i, q := range queries {
		qs[i] = Query{Nodes: q}
	}
	got, err := newEng.DoBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("DoBatch differs from SearchBatch")
	}
}

// TestDoBatchMixedOverrides: a batch whose queries carry different
// overrides groups by effective options and still returns, per query,
// exactly what a solo Do with the same overrides returns.
func TestDoBatchMixedOverrides(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500}
	e := NewEngine(g, opt)
	queries := leaderQueries(t, e, 5)
	qs := make([]Query, len(queries))
	for i, q := range queries {
		qs[i] = Query{Nodes: q}
	}
	qs[1].ContextSize = 4
	qs[2].Alpha = 0.2
	qs[3].TopK = 1 // post-cut: must not split the solve group
	got, err := e.DoBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	solo := NewEngine(g, opt)
	for i, q := range qs {
		want, err := solo.Do(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("batch result %d differs from solo Do with the same overrides", i)
		}
	}
}

// TestTypedErrors: the sentinel and struct errors survive the public
// entry points with errors.Is/As support.
func TestTypedErrors(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{ContextSize: 4, Walks: 5000, Seed: 1})
	ctx := context.Background()
	if _, err := e.Do(ctx, Query{}); !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("Do on empty query: %v, want ErrEmptyQuery", err)
	}
	if _, err := e.Search(nil); !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("Search(nil): %v, want ErrEmptyQuery", err)
	}
	_, err := e.DoBatch(ctx, []Query{{Nodes: []NodeID{1}}, {}})
	if !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("DoBatch with empty query: %v, want ErrEmptyQuery", err)
	}
	if want := "batch index 1"; err == nil || !contains(err.Error(), want) {
		t.Fatalf("DoBatch error %q does not name the index", err)
	}

	_, err = e.Resolve("Angela Merkel", "No Such Person", "Nor This One")
	var ue *UnresolvedError
	if !errors.As(err, &ue) {
		t.Fatalf("Resolve: %v, want *UnresolvedError", err)
	}
	if !reflect.DeepEqual(ue.Missing, []string{"No Such Person", "Nor This One"}) {
		t.Fatalf("Missing = %v", ue.Missing)
	}
	if _, err := e.SearchNames("No Such Person"); !errors.As(err, &ue) {
		t.Fatalf("SearchNames: %v, want *UnresolvedError", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// countdownCtx is a context.Context whose Err flips to Canceled after a
// fixed number of Err() probes — a deterministic way to cancel "mid-PPR"
// or "mid-comparison": the pipeline checks ctx between sweeps and label
// tests, so the k-th check is a precise cut point regardless of timing.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdownCtx(k int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(k)
	return c
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestDoCancelledMidFlight: cancelling partway through the pipeline (at
// every feasible probe depth) returns context.Canceled, and the engine's
// shared cache is never corrupted — a subsequent identical request on the
// same engine returns bitwise what a fresh engine computes.
func TestDoCancelledMidFlight(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500}
	e := NewEngine(g, opt)
	nodes, err := e.Resolve("Angela Merkel", "Barack Obama", "Vladimir Putin")
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewEngine(g, opt).Do(context.Background(), Query{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	// Find how many probes a cold run needs, then cancel at depths below
	// it: early cuts land mid-PPR, later ones mid-comparison. Each cut
	// runs on a cold engine — a warm engine skips probe points along with
	// the work, so only a cold run's probe schedule is deterministic.
	probe := newCountdownCtx(1 << 30)
	if _, err := e.Do(probe, Query{Nodes: nodes}); err != nil {
		t.Fatal(err)
	}
	total := (1 << 30) - probe.left.Load()
	if total < 4 {
		t.Fatalf("pipeline only probed ctx %d times; cut points too coarse", total)
	}
	scarred := NewEngine(g, opt)
	for k := int64(0); k < total; k += 1 + total/16 {
		if _, err := NewEngine(g, opt).Do(newCountdownCtx(k), Query{Nodes: nodes}); !errors.Is(err, context.Canceled) {
			t.Fatalf("cold cut at probe %d: err = %v, want context.Canceled", k, err)
		}
		// The same cut against one accumulating engine: its cache absorbs
		// whatever the aborted runs stored. Warm skips can let a late cut
		// finish early, so only the error type is constrained, not its
		// presence.
		if _, err := scarred.Do(newCountdownCtx(k), Query{Nodes: nodes}); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("scarred cut at probe %d: unexpected err %v", k, err)
		}
	}
	// The aborted runs may have cached complete sub-results but never
	// partial ones: the same request must now complete bitwise
	// identically to the uncancelled engine.
	got, err := scarred.Do(context.Background(), Query{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("result after cancelled runs differs — cache corrupted")
	}
	// And the cache still behaves as a cache: a warm repeat is pure hits.
	missesBefore := scarred.CacheStats().Misses
	if _, err := scarred.Do(context.Background(), Query{Nodes: nodes}); err != nil {
		t.Fatal(err)
	}
	if st := scarred.CacheStats(); st.Misses != missesBefore {
		t.Fatalf("warm repeat missed after cancelled runs: %+v", st)
	}
}

// TestDoCompareMatchesCompare: the request-scoped comparison stage equals
// the deprecated wrapper and honors overrides.
func TestDoCompareMatchesCompare(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{ContextSize: 6, Walks: 20000, Seed: 3, TestSamples: 500})
	nodes, err := e.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	cset := e.Context(nodes, 5)
	ids := make([]NodeID, len(cset))
	for i, it := range cset {
		ids[i] = it.ID
	}
	want := e.Compare(nodes, ids)
	got, err := e.DoCompare(context.Background(), nodes, ids, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("DoCompare differs from Compare")
	}
	// TopK is honored as a payload cut on the ranked characteristics.
	if len(want) >= 2 {
		cut, err := e.DoCompare(context.Background(), nodes, ids, Query{TopK: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(cut) != 1 || !reflect.DeepEqual(cut[0], want[0]) {
			t.Fatalf("DoCompare TopK=1 returned %d records (head mismatch %v)", len(cut), len(cut) > 0)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.DoCompare(ctx, nodes, ids, Query{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled DoCompare: %v", err)
	}
}

// TestLoadGraphFileSniffsSnapshot: a snapshot without the .kgsnap
// extension loads via magic-byte sniffing instead of failing as a triple
// parse, and non-snapshot files still parse as triples.
func TestLoadGraphFileSniffsSnapshot(t *testing.T) {
	g := buildLeaders()
	path := filepath.Join(t.TempDir(), "renamed-snapshot.bin")
	if err := SaveSnapshotFile(g, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGraphFile(path)
	if err != nil {
		t.Fatalf("renamed snapshot failed to load: %v", err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("sniffed snapshot mismatch: %s vs %s", got.Stats(), g.Stats())
	}
	// A triple file starting with ordinary text keeps parsing as triples.
	tsv := filepath.Join(t.TempDir(), "facts.bin")
	if err := writeFile(tsv, "a\tp\tb\nb\tp\tc\n"); err != nil {
		t.Fatal(err)
	}
	tg, err := LoadGraphFile(tsv)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumNodes() != 3 {
		t.Fatalf("triple fallback NumNodes = %d", tg.NumNodes())
	}
	// A tiny file shorter than the magic is a (failing) triple parse, not
	// a sniff panic.
	tiny := filepath.Join(t.TempDir(), "tiny.bin")
	if err := writeFile(tiny, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGraphFile(tiny); err == nil {
		t.Fatal("malformed tiny file should error")
	}
}

// TestCancelledRunStoresNoPartialSeedVectors: a request aborted mid-PPR
// leaves the seed-vector layer empty — nothing partial was stored.
func TestCancelledRunStoresNoPartialSeedVectors(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500}
	e := NewEngine(g, opt)
	nodes, err := e.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	// Cut after the very first probe: inside the PPR solve, before any
	// seed vector completes.
	if _, err := e.Do(newCountdownCtx(1), Query{Nodes: nodes}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := e.CacheStats(); st.Layers[qcache.LayerSeed].Bytes != 0 {
		t.Fatalf("seed layer holds %d bytes after an aborted solve", st.Layers[qcache.LayerSeed].Bytes)
	}
}

// TestQueryValidation: override values no engine configuration could make
// valid return ErrBadQuery naming the field — from Do, DoBatch, and
// DoStream alike — instead of silently inheriting engine defaults.
func TestQueryValidation(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{ContextSize: 4, Walks: 5000, Seed: 1, TestSamples: 500})
	ctx := context.Background()
	nodes, err := e.Resolve("Angela Merkel")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		field string
		q     Query
	}{
		{"TopK", Query{Nodes: nodes, TopK: -1}},
		{"ContextSize", Query{Nodes: nodes, ContextSize: -3}},
		{"Alpha", Query{Nodes: nodes, Alpha: -0.05}},
		{"Alpha", Query{Nodes: nodes, Alpha: 1}},
		{"Alpha", Query{Nodes: nodes, Alpha: 1.5}},
		{"TestSamples", Query{Nodes: nodes, TestSamples: -5}},
	}
	for _, tc := range cases {
		_, err := e.Do(ctx, tc.q)
		if !errors.Is(err, ErrBadQuery) {
			t.Fatalf("%s: Do err = %v, want ErrBadQuery", tc.field, err)
		}
		if !contains(err.Error(), tc.field) {
			t.Fatalf("%s: error %q does not name the field", tc.field, err)
		}
		if errors.Is(err, ErrEmptyQuery) {
			t.Fatalf("%s: bad-override error must not match ErrEmptyQuery", tc.field)
		}
	}

	// Batch: the whole batch fails, naming the offending index.
	_, err = e.DoBatch(ctx, []Query{{Nodes: nodes}, {Nodes: nodes, TopK: -2}})
	if !errors.Is(err, ErrBadQuery) || !contains(err.Error(), "batch index 1") {
		t.Fatalf("DoBatch err = %v, want ErrBadQuery naming index 1", err)
	}

	// Stream: the malformed query yields a typed-error outcome, the valid
	// one still completes.
	outcomes := map[int]Outcome{}
	for o := range e.DoStream(ctx, []Query{{Nodes: nodes, Alpha: 2}, {Nodes: nodes}}) {
		outcomes[o.Index] = o
	}
	if !errors.Is(outcomes[0].Err, ErrBadQuery) {
		t.Fatalf("stream outcome 0 err = %v, want ErrBadQuery", outcomes[0].Err)
	}
	if outcomes[1].Err != nil || len(outcomes[1].Result.Characteristics) == 0 {
		t.Fatalf("stream outcome 1 = %+v, want a completed result", outcomes[1])
	}
}

// TestDoDegraded: with Query.Degrade, a cut landing in the comparison
// stage returns HTTP-servable partial state — the full context plus a
// prefix-consistent subset of the uncut report — alongside a
// *DegradedError; cuts before the context completes still fail whole, and
// the engine's cache stays uncorrupted either way.
func TestDoDegraded(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500}
	want, err := NewEngine(g, opt).Do(context.Background(), Query{Nodes: mustResolve(t, g, opt)})
	if err != nil {
		t.Fatal(err)
	}
	wantByName := map[string]Characteristic{}
	for _, c := range want.Characteristics {
		wantByName[c.Name] = c
	}
	nodes := mustResolve(t, g, opt)

	probe := newCountdownCtx(1 << 30)
	if _, err := NewEngine(g, opt).Do(probe, Query{Nodes: nodes}); err != nil {
		t.Fatal(err)
	}
	total := (1 << 30) - probe.left.Load()

	degradedSeen := false
	for k := int64(1); k < total; k += 1 + total/24 {
		res, err := NewEngine(g, opt).Do(newCountdownCtx(k), Query{Nodes: nodes, Degrade: true})
		var de *DegradedError
		switch {
		case err == nil:
			t.Fatalf("cut at probe %d completed on a cold engine", k)
		case errors.As(err, &de):
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cut at probe %d: DegradedError does not unwrap the ctx error: %v", k, err)
			}
			if !reflect.DeepEqual(res.Context, want.Context) {
				t.Fatalf("cut at probe %d: degraded context differs from the uncut run", k)
			}
			if len(res.Characteristics) != de.Tested || de.Total != len(want.Characteristics) {
				t.Fatalf("cut at probe %d: counts %d/%d vs %d records, want total %d",
					k, de.Tested, de.Total, len(res.Characteristics), len(want.Characteristics))
			}
			for _, c := range res.Characteristics {
				full, ok := wantByName[c.Name]
				if !ok {
					t.Fatalf("cut at probe %d: degraded record %q absent from the uncut run", k, c.Name)
				}
				if !reflect.DeepEqual(c, full) {
					t.Fatalf("cut at probe %d: degraded record %q differs from the uncut run", k, c.Name)
				}
			}
			if len(res.Characteristics) > 0 {
				degradedSeen = true
			}
		case errors.Is(err, context.Canceled):
			// Cut landed before the comparison stage: all-or-nothing.
			if len(res.Characteristics) != 0 {
				t.Fatalf("cut at probe %d: bare cancellation returned characteristics", k)
			}
		default:
			t.Fatalf("cut at probe %d: unexpected err %v", k, err)
		}
	}
	if !degradedSeen {
		t.Fatal("no cut depth produced a non-empty degraded result; cut grid too coarse")
	}

	// Degraded runs never corrupt the cache: an engine scarred by degraded
	// cuts completes the same request bitwise identically.
	scarred := NewEngine(g, opt)
	for k := int64(1); k < total; k += 1 + total/8 {
		_, _ = scarred.Do(newCountdownCtx(k), Query{Nodes: nodes, Degrade: true})
	}
	got, err := scarred.Do(context.Background(), Query{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("result after degraded runs differs — cache corrupted")
	}
}

// mustResolve returns the standard three-leader query for degraded-mode
// tests.
func mustResolve(t *testing.T, g *Graph, opt Options) []NodeID {
	t.Helper()
	nodes, err := NewEngine(g, opt).Resolve("Angela Merkel", "Barack Obama", "Vladimir Putin")
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}
