package notable_test

import (
	"context"
	"fmt"

	"repro"
)

// figure1Graph builds the paper's Figure 1 world.
func figure1Graph() *notable.Graph {
	b := notable.NewBuilder(32)
	b.AddEdge("Angela Merkel", "studied", "Physics")
	for _, leader := range []string{"Barack Obama", "Vladimir Putin", "Matteo Renzi", "François Hollande"} {
		b.AddEdge(leader, "studied", "Law")
	}
	b.AddEdge("Barack Obama", "hasChild", "Malia")
	b.AddEdge("Vladimir Putin", "hasChild", "Mariya")
	b.AddEdge("Vladimir Putin", "hasChild", "Yecaterina")
	b.AddEdge("Matteo Renzi", "hasChild", "Francesca")
	b.AddEdge("Matteo Renzi", "hasChild", "Emanuele")
	b.AddEdge("Matteo Renzi", "hasChild", "Ester")
	b.AddEdge("François Hollande", "hasChild", "Thomas")
	b.AddEdge("François Hollande", "hasChild", "Clémence")
	b.AddEdge("François Hollande", "hasChild", "Julien")
	b.AddEdge("François Hollande", "hasChild", "Flora")
	return b.Build()
}

// ExampleEngine_Do reproduces the paper's Figure 1 walkthrough through
// the request-scoped API: compared with other leaders, Angela Merkel has
// no children and studied Physics rather than Law.
func ExampleEngine_Do() {
	engine := notable.NewEngine(figure1Graph(), notable.Options{
		ContextSize: 3,
		Walks:       20000,
		Seed:        7,
	})
	query, err := engine.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := engine.Do(context.Background(), notable.Query{Nodes: query})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, c := range res.NotableOnly() {
		fmt.Println(c.Name)
	}
	// Output:
	// hasChild
	// studied
}

// ExampleEngine_DoStream serves a batch as a stream: each query's result
// arrives the moment it completes instead of waiting for the whole batch.
func ExampleEngine_DoStream() {
	engine := notable.NewEngine(figure1Graph(), notable.Options{
		ContextSize: 3,
		Walks:       20000,
		Seed:        7,
	})
	merkelObama, _ := engine.Resolve("Angela Merkel", "Barack Obama")
	putin, _ := engine.Resolve("Vladimir Putin")
	notables := make([]int, 2)
	for out := range engine.DoStream(context.Background(), []notable.Query{
		{Nodes: merkelObama},
		{Nodes: putin, TopK: 3}, // per-request override: top 3 labels only
	}) {
		if out.Err != nil {
			fmt.Println("error:", out.Err)
			return
		}
		notables[out.Index] = len(out.Result.NotableOnly())
	}
	fmt.Println(notables[0] > 0, len(notables) == 2)
	// Output:
	// true true
}

// ExampleEngine_SearchNames is the pre-context entry point; new code
// should use Resolve + Do (see ExampleEngine_Do).
func ExampleEngine_SearchNames() {
	engine := notable.NewEngine(figure1Graph(), notable.Options{
		ContextSize: 3,
		Walks:       20000,
		Seed:        7,
	})
	res, err := engine.SearchNames("Angela Merkel", "Barack Obama")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, c := range res.NotableOnly() {
		fmt.Println(c.Name)
	}
	// Output:
	// hasChild
	// studied
}

// ExampleEngine_Compare tests an explicit query against an explicit
// context, skipping context selection entirely.
func ExampleEngine_Compare() {
	b := notable.NewBuilder(16)
	b.AddEdge("alice", "hasDegree", "PhD")
	b.AddEdge("alice", "worksAt", "Acme")
	b.AddEdge("bob", "worksAt", "Acme")
	b.AddEdge("carol", "worksAt", "Acme")
	b.AddEdge("dave", "worksAt", "Acme")
	g := b.Build()

	engine := notable.NewEngine(g, notable.Options{Seed: 1})
	query, _ := engine.Resolve("alice")
	context, _ := engine.Resolve("bob", "carol", "dave")
	for _, c := range engine.Compare(query, context) {
		if c.Notable() {
			fmt.Printf("%s is notable\n", c.Name)
		}
	}
	// Output:
	// hasDegree is notable
}
