package notable

import "os"

// writeFile is a test helper shared across root-package tests.
func writeFile(path, data string) error {
	return os.WriteFile(path, []byte(data), 0o644)
}
