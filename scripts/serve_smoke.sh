#!/usr/bin/env bash
# Smoke-test the serving binary end to end: build ncserved, start it on a
# tiny generated dataset, hit /healthz and /v1/search, then SIGTERM it and
# require a clean (exit 0) graceful drain. This is the real-signal
# counterpart to internal/server's in-process lifecycle tests.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18080"
BIN="$(mktemp -d)/ncserved"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/ncserved

"$BIN" -dataset figure1 -addr "$ADDR" -drain 5s &
PID=$!

# Wait for the listener.
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "smoke: server died before serving" >&2
    exit 1
  fi
  sleep 0.1
done

HEALTH=$(curl -sf "http://$ADDR/healthz")
echo "smoke: healthz -> $HEALTH"
case "$HEALTH" in *ok*) ;; *) echo "smoke: bad healthz" >&2; exit 1 ;; esac

# One real query through the full stack (figure1 is the paper's toy graph).
RESULT=$(curl -sf "http://$ADDR/v1/search" -d '{"entities":["Angela Merkel","Barack Obama"]}')
echo "smoke: search -> ${RESULT:0:160}..."
case "$RESULT" in
  *'"characteristics"'*) ;;
  *) echo "smoke: search response carries no characteristics" >&2; exit 1 ;;
esac

STATS=$(curl -sf "http://$ADDR/statsz")
case "$STATS" in *'"in_flight"'*) ;; *) echo "smoke: bad statsz" >&2; exit 1 ;; esac
case "$STATS" in
  *'"graph_epoch":0'*) ;;
  *) echo "smoke: statsz should start at graph_epoch 0: $STATS" >&2; exit 1 ;;
esac

# Live ingest: POST a triple batch, require the epoch to advance and the
# very next search to reflect the new label — no restart in between.
INGEST=$(curl -sf "http://$ADDR/v1/ingest" -d '{"adds":[
  {"s":"Angela Merkel","p":"awarded","o":"Nobel Peace Prize"},
  {"s":"Barack Obama","p":"awarded","o":"Nobel Peace Prize"}]}')
echo "smoke: ingest -> $INGEST"
case "$INGEST" in
  *'"epoch":1'*) ;;
  *) echo "smoke: ingest did not advance the epoch" >&2; exit 1 ;;
esac

STATS=$(curl -sf "http://$ADDR/statsz")
case "$STATS" in
  *'"graph_epoch":1'*) ;;
  *) echo "smoke: statsz epoch did not advance: $STATS" >&2; exit 1 ;;
esac

RESULT=$(curl -sf "http://$ADDR/v1/search" -d '{"entities":["Angela Merkel","Barack Obama"]}')
case "$RESULT" in
  *'"label":"awarded"'*) echo "smoke: post-ingest search sees the new label" ;;
  *) echo "smoke: post-ingest search misses the ingested label: ${RESULT:0:300}" >&2; exit 1 ;;
esac

# Graceful drain: SIGTERM must end the process with exit 0.
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "smoke: ncserved exited $STATUS after SIGTERM" >&2
  exit 1
fi
echo "smoke: clean SIGTERM exit"
