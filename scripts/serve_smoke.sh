#!/usr/bin/env bash
# Smoke-test the serving binary end to end: build ncserved, start it on a
# tiny generated dataset, hit /healthz and /v1/search, then SIGTERM it and
# require a clean (exit 0) graceful drain. This is the real-signal
# counterpart to internal/server's in-process lifecycle tests.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18080"
BIN="$(mktemp -d)/ncserved"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/ncserved

"$BIN" -dataset figure1 -addr "$ADDR" -drain 5s &
PID=$!

# Wait for the listener.
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "smoke: server died before serving" >&2
    exit 1
  fi
  sleep 0.1
done

HEALTH=$(curl -sf "http://$ADDR/healthz")
echo "smoke: healthz -> $HEALTH"
case "$HEALTH" in *ok*) ;; *) echo "smoke: bad healthz" >&2; exit 1 ;; esac

# One real query through the full stack (figure1 is the paper's toy graph).
RESULT=$(curl -sf "http://$ADDR/v1/search" -d '{"entities":["Angela Merkel","Barack Obama"]}')
echo "smoke: search -> ${RESULT:0:160}..."
case "$RESULT" in
  *'"characteristics"'*) ;;
  *) echo "smoke: search response carries no characteristics" >&2; exit 1 ;;
esac

STATS=$(curl -sf "http://$ADDR/statsz")
case "$STATS" in *'"in_flight"'*) ;; *) echo "smoke: bad statsz" >&2; exit 1 ;; esac
case "$STATS" in *'"metrics"'*) ;; *) echo "smoke: statsz carries no metrics key" >&2; exit 1 ;; esac

# /metrics leg: the exposition must parse (every sample line is
# "name[{labels}] value") and the search counter must be monotone across
# two requests.
scrape_search_total() {
  curl -sf "http://$ADDR/metrics" | awk '
    /^#/ { next }
    NF { if (NF < 2 || $NF+0 != $NF) { print "BAD:" $0; exit 1 } }
    /^nc_http_requests_total\{path="\/v1\/search"/ { sum += $NF }
    END { print sum+0 }'
}
SEARCH_TOTAL_1=$(scrape_search_total)
case "$SEARCH_TOTAL_1" in
  BAD:*) echo "smoke: unparseable /metrics line: $SEARCH_TOTAL_1" >&2; exit 1 ;;
esac
if [ "$SEARCH_TOTAL_1" -lt 1 ]; then
  echo "smoke: /metrics shows $SEARCH_TOTAL_1 searches after one search" >&2
  exit 1
fi
METRICS=$(curl -sf "http://$ADDR/metrics")
for FAM in nc_stage_seconds nc_request_seconds nc_http_request_seconds; do
  case "$METRICS" in
    *"$FAM"*) ;;
    *) echo "smoke: /metrics missing family $FAM" >&2; exit 1 ;;
  esac
done
case "$STATS" in
  *'"graph_epoch":0'*) ;;
  *) echo "smoke: statsz should start at graph_epoch 0: $STATS" >&2; exit 1 ;;
esac

# Live ingest: POST a triple batch, require the epoch to advance and the
# very next search to reflect the new label — no restart in between.
INGEST=$(curl -sf "http://$ADDR/v1/ingest" -d '{"adds":[
  {"s":"Angela Merkel","p":"awarded","o":"Nobel Peace Prize"},
  {"s":"Barack Obama","p":"awarded","o":"Nobel Peace Prize"}]}')
echo "smoke: ingest -> $INGEST"
case "$INGEST" in
  *'"epoch":1'*) ;;
  *) echo "smoke: ingest did not advance the epoch" >&2; exit 1 ;;
esac

STATS=$(curl -sf "http://$ADDR/statsz")
case "$STATS" in
  *'"graph_epoch":1'*) ;;
  *) echo "smoke: statsz epoch did not advance: $STATS" >&2; exit 1 ;;
esac

RESULT=$(curl -sf "http://$ADDR/v1/search" -d '{"entities":["Angela Merkel","Barack Obama"]}')
case "$RESULT" in
  *'"label":"awarded"'*) echo "smoke: post-ingest search sees the new label" ;;
  *) echo "smoke: post-ingest search misses the ingested label: ${RESULT:0:300}" >&2; exit 1 ;;
esac

SEARCH_TOTAL_2=$(scrape_search_total)
if [ "$SEARCH_TOTAL_2" -le "$SEARCH_TOTAL_1" ]; then
  echo "smoke: search counter not monotone: $SEARCH_TOTAL_1 -> $SEARCH_TOTAL_2" >&2
  exit 1
fi
LOGZ=$(curl -sf "http://$ADDR/v1/logz?n=5")
case "$LOGZ" in
  *'"/v1/search"'*) echo "smoke: metrics leg passed ($SEARCH_TOTAL_1 -> $SEARCH_TOTAL_2 searches)" ;;
  *) echo "smoke: logz tail carries no search record: $LOGZ" >&2; exit 1 ;;
esac

# Graceful drain: SIGTERM must end the process with exit 0.
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "smoke: ncserved exited $STATUS after SIGTERM" >&2
  exit 1
fi
echo "smoke: clean SIGTERM exit"

# Restart recovery: with -wal-dir, an acknowledged ingest must survive a
# SIGKILL (no drain, no flush — the process just dies) and reappear when
# a new process recovers the same directory.
ADDR2="127.0.0.1:18081"
WALDIR="$(dirname "$BIN")/wal"

wait_up() { # pid
  for i in $(seq 1 50); do
    if curl -sf "http://$ADDR2/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$1" 2>/dev/null; then
      echo "smoke: durable server died before serving" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "smoke: durable server never came up" >&2
  exit 1
}

"$BIN" -dataset figure1 -addr "$ADDR2" -drain 5s -wal-dir "$WALDIR" &
PID=$!
wait_up "$PID"

INGEST=$(curl -sf "http://$ADDR2/v1/ingest" -d '{"adds":[
  {"s":"Angela Merkel","p":"awarded","o":"Nobel Peace Prize"},
  {"s":"Barack Obama","p":"awarded","o":"Nobel Peace Prize"}]}')
case "$INGEST" in
  *'"epoch":1'*) echo "smoke: durable ingest acknowledged" ;;
  *) echo "smoke: durable ingest did not advance the epoch: $INGEST" >&2; exit 1 ;;
esac
STATS=$(curl -sf "http://$ADDR2/statsz")
case "$STATS" in
  *'"wal_enabled":true'*) ;;
  *) echo "smoke: statsz does not report the WAL: $STATS" >&2; exit 1 ;;
esac

kill -KILL "$PID"
wait "$PID" 2>/dev/null || true
echo "smoke: durable server SIGKILLed"

"$BIN" -dataset figure1 -addr "$ADDR2" -drain 5s -wal-dir "$WALDIR" &
PID=$!
wait_up "$PID"

STATS=$(curl -sf "http://$ADDR2/statsz")
case "$STATS" in
  *'"graph_epoch":1'*) ;;
  *) echo "smoke: recovered epoch is not 1: $STATS" >&2; exit 1 ;;
esac
case "$STATS" in
  *'"recovered_records":1'*) ;;
  *) echo "smoke: statsz does not report the replayed record: $STATS" >&2; exit 1 ;;
esac
RESULT=$(curl -sf "http://$ADDR2/v1/search" -d '{"entities":["Angela Merkel","Barack Obama"]}')
case "$RESULT" in
  *'"label":"awarded"'*) echo "smoke: ingested label survived the kill" ;;
  *) echo "smoke: recovered search misses the ingested label: ${RESULT:0:300}" >&2; exit 1 ;;
esac

kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "smoke: recovered ncserved exited $STATUS after SIGTERM" >&2
  exit 1
fi
echo "smoke: restart-recovery leg passed"

# ---------------------------------------------------------------------
# Readiness vs liveness: a follower pointed at a dead primary must be
# alive (livez 200, restart triggers leave it be) but NOT ready
# (healthz 503, load balancers route around it) — and must flip to
# ready on its own once the primary appears and replay reaches the
# acked epoch.
PRI_ADDR="127.0.0.1:18082"
FOL_ADDR="127.0.0.1:18083"
PRI_WAL="$(dirname "$BIN")/wal-primary"

http_code() { # url
  curl -s -o /dev/null -w '%{http_code}' "$1" 2>/dev/null || echo 000
}
wait_code() { # url want what
  for i in $(seq 1 100); do
    if [ "$(http_code "$1")" = "$2" ]; then
      return 0
    fi
    sleep 0.2
  done
  echo "smoke: timed out waiting for $3 ($1 -> $(http_code "$1"), want $2)" >&2
  exit 1
}

"$BIN" -follow "http://$PRI_ADDR" -addr "$FOL_ADDR" -drain 5s &
FOL_PID=$!
wait_code "http://$FOL_ADDR/livez" 200 "follower liveness"
CODE=$(http_code "http://$FOL_ADDR/healthz")
if [ "$CODE" != "503" ]; then
  echo "smoke: follower with a dead primary reports healthz $CODE, want 503" >&2
  exit 1
fi
HEALTH=$(curl -s "http://$FOL_ADDR/healthz")
case "$HEALTH" in
  *'"ready":false'*) echo "smoke: follower is alive but not ready -> $HEALTH" ;;
  *) echo "smoke: unready follower healthz lacks ready:false: $HEALTH" >&2; exit 1 ;;
esac

"$BIN" -dataset figure1 -addr "$PRI_ADDR" -drain 5s -wal-dir "$PRI_WAL" &
PRI_PID=$!
wait_code "http://$PRI_ADDR/healthz" 200 "primary readiness"
INGEST=$(curl -sf "http://$PRI_ADDR/v1/ingest" -d '{"adds":[
  {"s":"Angela Merkel","p":"awarded","o":"Nobel Peace Prize"}]}')
case "$INGEST" in
  *'"epoch":1'*) ;;
  *) echo "smoke: primary ingest did not advance the epoch: $INGEST" >&2; exit 1 ;;
esac

wait_code "http://$FOL_ADDR/healthz" 200 "follower readiness flip"
HEALTH=$(curl -sf "http://$FOL_ADDR/healthz")
case "$HEALTH" in
  *'"ready":true'*) echo "smoke: follower flipped ready -> $HEALTH" ;;
  *) echo "smoke: ready follower healthz lacks ready:true: $HEALTH" >&2; exit 1 ;;
esac
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$FOL_ADDR/v1/ingest" -d '{"adds":[{"s":"a","p":"b","o":"c"}]}')
if [ "$CODE" != "403" ]; then
  echo "smoke: follower accepted an ingest ($CODE), want 403" >&2
  exit 1
fi
echo "smoke: readiness-flip leg passed"

# ---------------------------------------------------------------------
# Failover: primary + 2 followers behind ncrouter; kill one follower
# mid-query-loop (every query must still answer 200 at a valid epoch),
# restart it, and require catch-up to the head epoch.
RBIN="$(dirname "$BIN")/ncrouter"
go build -o "$RBIN" ./cmd/ncrouter

FOL2_ADDR="127.0.0.1:18084"
RTR_ADDR="127.0.0.1:18085"

"$BIN" -follow "http://$PRI_ADDR" -addr "$FOL2_ADDR" -drain 5s &
FOL2_PID=$!
wait_code "http://$FOL2_ADDR/healthz" 200 "second follower readiness"

"$RBIN" -addr "$RTR_ADDR" -primary primary -probe-interval 250ms -fail-window 2 \
  -backend "primary=http://$PRI_ADDR" \
  -backend "f1=http://$FOL_ADDR" \
  -backend "f2=http://$FOL2_ADDR" &
RTR_PID=$!
wait_code "http://$RTR_ADDR/healthz" 200 "router health"

for i in $(seq 1 10); do
  if [ "$i" = "4" ]; then
    kill -KILL "$FOL_PID"
    wait "$FOL_PID" 2>/dev/null || true
    echo "smoke: follower f1 SIGKILLed mid-loop"
  fi
  RESULT=$(curl -sf -H 'X-Min-Epoch: 1' "http://$RTR_ADDR/v1/search" \
    -d '{"entities":["Angela Merkel","Barack Obama"]}') || {
    echo "smoke: routed query $i failed during failover" >&2
    exit 1
  }
  case "$RESULT" in
    *'"epoch":1'*) ;;
    *) echo "smoke: routed query $i answered at a wrong epoch: ${RESULT:0:200}" >&2; exit 1 ;;
  esac
done
echo "smoke: all routed queries survived the follower kill"

"$BIN" -follow "http://$PRI_ADDR" -addr "$FOL_ADDR" -drain 5s &
FOL_PID=$!
wait_code "http://$FOL_ADDR/healthz" 200 "restarted follower catch-up"
HEALTH=$(curl -sf "http://$FOL_ADDR/healthz")
case "$HEALTH" in
  *'"epoch":1'*) echo "smoke: restarted follower caught up to the head epoch" ;;
  *) echo "smoke: restarted follower at the wrong epoch: $HEALTH" >&2; exit 1 ;;
esac

# Read-your-writes through the router: ingest lands on the primary and
# a min-epoch read answers at (or past) the new epoch.
INGEST=$(curl -sf "http://$RTR_ADDR/v1/ingest" -d '{"adds":[
  {"s":"Barack Obama","p":"awarded","o":"Nobel Peace Prize"}]}')
case "$INGEST" in
  *'"epoch":2'*) ;;
  *) echo "smoke: routed ingest did not advance the epoch: $INGEST" >&2; exit 1 ;;
esac
RESULT=$(curl -sf -H 'X-Min-Epoch: 2' "http://$RTR_ADDR/v1/search" \
  -d '{"entities":["Angela Merkel","Barack Obama"]}')
case "$RESULT" in
  *'"epoch":2'*) echo "smoke: min-epoch read sees the routed ingest" ;;
  *) echo "smoke: min-epoch read stuck behind the ingest: ${RESULT:0:200}" >&2; exit 1 ;;
esac

for P in "$RTR_PID" "$FOL_PID" "$FOL2_PID" "$PRI_PID"; do
  kill -TERM "$P" 2>/dev/null || true
  wait "$P" 2>/dev/null || true
done
echo "smoke: failover leg passed"
