#!/usr/bin/env bash
# Smoke-test the serving binary end to end: build ncserved, start it on a
# tiny generated dataset, hit /healthz and /v1/search, then SIGTERM it and
# require a clean (exit 0) graceful drain. This is the real-signal
# counterpart to internal/server's in-process lifecycle tests.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18080"
BIN="$(mktemp -d)/ncserved"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/ncserved

"$BIN" -dataset figure1 -addr "$ADDR" -drain 5s &
PID=$!

# Wait for the listener.
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "smoke: server died before serving" >&2
    exit 1
  fi
  sleep 0.1
done

HEALTH=$(curl -sf "http://$ADDR/healthz")
echo "smoke: healthz -> $HEALTH"
case "$HEALTH" in *ok*) ;; *) echo "smoke: bad healthz" >&2; exit 1 ;; esac

# One real query through the full stack (figure1 is the paper's toy graph).
RESULT=$(curl -sf "http://$ADDR/v1/search" -d '{"entities":["Angela Merkel","Barack Obama"]}')
echo "smoke: search -> ${RESULT:0:160}..."
case "$RESULT" in
  *'"characteristics"'*) ;;
  *) echo "smoke: search response carries no characteristics" >&2; exit 1 ;;
esac

STATS=$(curl -sf "http://$ADDR/statsz")
case "$STATS" in *'"in_flight"'*) ;; *) echo "smoke: bad statsz" >&2; exit 1 ;; esac
case "$STATS" in
  *'"graph_epoch":0'*) ;;
  *) echo "smoke: statsz should start at graph_epoch 0: $STATS" >&2; exit 1 ;;
esac

# Live ingest: POST a triple batch, require the epoch to advance and the
# very next search to reflect the new label — no restart in between.
INGEST=$(curl -sf "http://$ADDR/v1/ingest" -d '{"adds":[
  {"s":"Angela Merkel","p":"awarded","o":"Nobel Peace Prize"},
  {"s":"Barack Obama","p":"awarded","o":"Nobel Peace Prize"}]}')
echo "smoke: ingest -> $INGEST"
case "$INGEST" in
  *'"epoch":1'*) ;;
  *) echo "smoke: ingest did not advance the epoch" >&2; exit 1 ;;
esac

STATS=$(curl -sf "http://$ADDR/statsz")
case "$STATS" in
  *'"graph_epoch":1'*) ;;
  *) echo "smoke: statsz epoch did not advance: $STATS" >&2; exit 1 ;;
esac

RESULT=$(curl -sf "http://$ADDR/v1/search" -d '{"entities":["Angela Merkel","Barack Obama"]}')
case "$RESULT" in
  *'"label":"awarded"'*) echo "smoke: post-ingest search sees the new label" ;;
  *) echo "smoke: post-ingest search misses the ingested label: ${RESULT:0:300}" >&2; exit 1 ;;
esac

# Graceful drain: SIGTERM must end the process with exit 0.
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "smoke: ncserved exited $STATUS after SIGTERM" >&2
  exit 1
fi
echo "smoke: clean SIGTERM exit"

# Restart recovery: with -wal-dir, an acknowledged ingest must survive a
# SIGKILL (no drain, no flush — the process just dies) and reappear when
# a new process recovers the same directory.
ADDR2="127.0.0.1:18081"
WALDIR="$(dirname "$BIN")/wal"

wait_up() { # pid
  for i in $(seq 1 50); do
    if curl -sf "http://$ADDR2/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$1" 2>/dev/null; then
      echo "smoke: durable server died before serving" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "smoke: durable server never came up" >&2
  exit 1
}

"$BIN" -dataset figure1 -addr "$ADDR2" -drain 5s -wal-dir "$WALDIR" &
PID=$!
wait_up "$PID"

INGEST=$(curl -sf "http://$ADDR2/v1/ingest" -d '{"adds":[
  {"s":"Angela Merkel","p":"awarded","o":"Nobel Peace Prize"},
  {"s":"Barack Obama","p":"awarded","o":"Nobel Peace Prize"}]}')
case "$INGEST" in
  *'"epoch":1'*) echo "smoke: durable ingest acknowledged" ;;
  *) echo "smoke: durable ingest did not advance the epoch: $INGEST" >&2; exit 1 ;;
esac
STATS=$(curl -sf "http://$ADDR2/statsz")
case "$STATS" in
  *'"wal_enabled":true'*) ;;
  *) echo "smoke: statsz does not report the WAL: $STATS" >&2; exit 1 ;;
esac

kill -KILL "$PID"
wait "$PID" 2>/dev/null || true
echo "smoke: durable server SIGKILLed"

"$BIN" -dataset figure1 -addr "$ADDR2" -drain 5s -wal-dir "$WALDIR" &
PID=$!
wait_up "$PID"

STATS=$(curl -sf "http://$ADDR2/statsz")
case "$STATS" in
  *'"graph_epoch":1'*) ;;
  *) echo "smoke: recovered epoch is not 1: $STATS" >&2; exit 1 ;;
esac
case "$STATS" in
  *'"recovered_records":1'*) ;;
  *) echo "smoke: statsz does not report the replayed record: $STATS" >&2; exit 1 ;;
esac
RESULT=$(curl -sf "http://$ADDR2/v1/search" -d '{"entities":["Angela Merkel","Barack Obama"]}')
case "$RESULT" in
  *'"label":"awarded"'*) echo "smoke: ingested label survived the kill" ;;
  *) echo "smoke: recovered search misses the ingested label: ${RESULT:0:300}" >&2; exit 1 ;;
esac

kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "smoke: recovered ncserved exited $STATUS after SIGTERM" >&2
  exit 1
fi
echo "smoke: restart-recovery leg passed"
