#!/usr/bin/env bash
# Short soak smoke: serve the yago-like dataset, drive 30s of mixed
# cold/warm/refine/stream/ingest traffic through cmd/ncsoak, and require
# a clean exit — ncsoak itself fails nonzero when goroutines or RSS do
# not return to baseline or the error rate exceeds its budget. This is
# the leak-and-drift counterpart to scripts/serve_smoke.sh's
# correctness legs; a full-length run is `ncsoak -duration 60s` by hand.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18090"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/ncserved" ./cmd/ncserved
go build -o "$TMP/ncsoak" ./cmd/ncsoak

# The default admission gate is 4x executor workers — on a small CI box
# that can be 4 slots, which a 15 QPS burst overruns with sheds the soak
# would count against its error budget. The smoke probes leaks, not
# admission control, so give the gate explicit headroom.
"$TMP/ncserved" -dataset yago -addr "$ADDR" -drain 5s -max-inflight 64 &
PID=$!

for i in $(seq 1 100); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "soak-smoke: server died before serving" >&2
    exit 1
  fi
  sleep 0.2
done

STATUS=0
"$TMP/ncsoak" -addr "http://$ADDR" -duration 30s -warmup 5s -cooldown 5s -qps 15 || STATUS=$?

kill -TERM "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

if [ "$STATUS" -ne 0 ]; then
  echo "soak-smoke: ncsoak exited $STATUS" >&2
  exit 1
fi
echo "soak-smoke: passed"
