#!/usr/bin/env bash
# bench.sh — run the hot-path micro-benchmarks, record them, and compare
# against the committed baseline.
#
# Usage:
#   scripts/bench.sh            run, write benchmarks/latest.txt, compare
#   scripts/bench.sh --rebase   additionally overwrite benchmarks/baseline.txt
#
# The comparison fails (exit 1) when any benchmark present in both files
# regresses by more than REGRESSION_FACTOR in ns/op, or allocates more
# allocs/op than the baseline — exactly more for the kernel and
# stage-level benches (whose counts are deterministic), beyond 2% for
# the end-to-end engine benches (Engine*/SearchBatch), whose pools and
# caches make per-run counts wobble by a few allocations. Machines
# differ; the baseline is a guard against order-of-magnitude
# regressions, not a calibrated SLO — rebase it when landing intentional
# performance changes.
set -euo pipefail

cd "$(dirname "$0")/.."

REGRESSION_FACTOR="${REGRESSION_FACTOR:-1.5}"
BENCH_PATTERN='BenchmarkPersonalizedYago|BenchmarkPersonalizedSumYago|BenchmarkScoresWithPaths|BenchmarkEngineWarmSearch|BenchmarkEngineRefineSearch|BenchmarkCompareSets$|BenchmarkGatherStep|BenchmarkSearchBatch|BenchmarkSearchStream|BenchmarkCacheContention|BenchmarkIngestDurable'
BENCH_PKGS="./internal/ppr/ ./internal/ctxsel/ ./internal/kg/ ./internal/core/ ./internal/qcache/ ."
# 20 iterations per benchmark: at 2 iterations (the old default) single-run
# ns/op noise routinely exceeded the regression factor; 20 keeps the whole
# suite under a few seconds while stabilizing the comparison. -count is
# explicit so a CI override can interleave repetitions.
BENCH_TIME="${BENCH_TIME:-20x}"
BENCH_COUNT="${BENCH_COUNT:-1}"

mkdir -p benchmarks

echo "running benchmarks (pattern: ${BENCH_PATTERN}, benchtime: ${BENCH_TIME}, count: ${BENCH_COUNT})..."
go test -run '^$' -bench "${BENCH_PATTERN}" -benchmem \
    -benchtime "${BENCH_TIME}" -count "${BENCH_COUNT}" \
    ${BENCH_PKGS} | tee benchmarks/latest.txt

if [[ "${1:-}" == "--rebase" ]]; then
    cp benchmarks/latest.txt benchmarks/baseline.txt
    echo "baseline rebased."
fi

if [[ ! -f benchmarks/baseline.txt ]]; then
    echo "no benchmarks/baseline.txt; run scripts/bench.sh --rebase to create one." >&2
    exit 0
fi

echo
echo "comparing against benchmarks/baseline.txt (regression factor ${REGRESSION_FACTOR})..."
awk -v factor="${REGRESSION_FACTOR}" '
    # Benchmark lines look like:
    #   BenchmarkName-8   123   456789 ns/op   1234 B/op   5 allocs/op
    function record(file, name, ns, allocs) {
        if (file == "baseline") { base_ns[name] = ns; base_allocs[name] = allocs }
        else { cur_ns[name] = ns; cur_allocs[name] = allocs }
    }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        ns = ""; allocs = ""
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "ns/op") ns = $i
            if ($(i + 1) == "allocs/op") allocs = $i
        }
        if (ns != "") record(FILENAME == ARGV[1] ? "baseline" : "latest", name, ns + 0, allocs + 0)
    }
    END {
        fails = 0
        for (name in cur_ns) {
            if (!(name in base_ns)) continue
            if (cur_ns[name] > base_ns[name] * factor) {
                printf "REGRESSION %s: %.0f ns/op vs baseline %.0f (>%gx)\n",
                    name, cur_ns[name], base_ns[name], factor
                fails++
            }
            # Kernel/stage benches pin allocs exactly; the end-to-end
            # engine benches (Engine*, SearchBatch, SearchStream) get 2%
            # slack for pool-refill and cache-growth wobble. The durable
            # ingest benches add fsync/group-commit scheduling on top, so
            # their per-run counts wobble by a few more allocations.
            slack = name ~ /BenchmarkEngine|BenchmarkSearch/ ? base_allocs[name] * 0.02 : 0
            if (name ~ /BenchmarkIngestDurable/) slack = base_allocs[name] * 0.10 + 2
            if (cur_allocs[name] > base_allocs[name] + slack) {
                printf "REGRESSION %s: %d allocs/op vs baseline %d\n",
                    name, cur_allocs[name], base_allocs[name]
                fails++
            }
            printf "ok %s: %.0f ns/op (baseline %.0f), %d allocs/op (baseline %d)\n",
                name, cur_ns[name], base_ns[name], cur_allocs[name], base_allocs[name]
        }
        if (fails > 0) { print fails " regression(s)"; exit 1 }
    }
' benchmarks/baseline.txt benchmarks/latest.txt
