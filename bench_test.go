// Benchmarks that regenerate every table and figure of the paper's
// evaluation section (see DESIGN.md's experiment index). Each benchmark
// runs the corresponding experiment end to end and reports the headline
// quality metric alongside timing; `cmd/ncbench` prints the full tables.
//
// Benchmarks use a half-scale dataset and a reduced walk budget so the
// full suite completes in minutes; cmd/ncbench defaults to full scale.
package notable

import (
	"sync"
	"testing"

	"repro/internal/corr"
	"repro/internal/ctxsel"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/kg"
	"repro/internal/stats"
)

const (
	benchSeed  = 42
	benchScale = 0.5
	benchWalks = 60000
)

var (
	benchOnce     sync.Once
	benchYago     *gen.Dataset
	benchLmdb     *gen.Dataset
	benchCfg      eval.Config
	actorsOnce    sync.Once
	actorsCase    *eval.ActorsCase
	actorsCaseErr error
)

func benchSetup(b *testing.B) (*gen.Dataset, *gen.Dataset, eval.Config) {
	b.Helper()
	benchOnce.Do(func() {
		benchYago = gen.YAGOLike(gen.YAGOConfig{Seed: benchSeed, Scale: benchScale})
		benchLmdb = gen.LinkedMDBLike(gen.LMDBConfig{Seed: benchSeed, Scale: benchScale})
		benchCfg = eval.Config{Seed: benchSeed, Scale: benchScale, Walks: benchWalks}.WithDefaults()
	})
	return benchYago, benchLmdb, benchCfg
}

func benchActorsCase(b *testing.B) *eval.ActorsCase {
	b.Helper()
	yago, _, cfg := benchSetup(b)
	actorsOnce.Do(func() {
		actorsCase, actorsCaseErr = eval.RunActorsCase(yago, cfg, dist.UnseenStrict)
	})
	if actorsCaseErr != nil {
		b.Fatal(actorsCaseErr)
	}
	return actorsCase
}

// queryOfSize resolves the first n actor query entities.
func queryOfSize(b *testing.B, d *gen.Dataset, n int) []kg.NodeID {
	b.Helper()
	q, err := d.Scenario("actors").QueryIDs(d.Graph, n)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// BenchmarkFig2aContextRW regenerates Figure 2a: the per-query-size F1
// sweep of ContextRW over context sizes.
func BenchmarkFig2aContextRW(b *testing.B) {
	yago, _, cfg := benchSetup(b)
	sc := yago.Scenario("actors")
	cuts := cfg.Cuts()
	for i := 0; i < b.N; i++ {
		best := 0.0
		for size := 2; size <= 6; size++ {
			q := queryOfSize(b, yago, size)
			ranking := eval.Ranking(yago.Graph, q, eval.AlgContextRW, cfg, cfg.MaxContext)
			curve := eval.F1Curve(ranking, sc.GroundTruthIDs(yago.Graph, size), cuts)
			if m, _ := eval.MaxF1(cuts, curve); m > best {
				best = m
			}
		}
		b.ReportMetric(best, "maxF1")
	}
}

// BenchmarkFig2bRandomWalk regenerates Figure 2b: the same sweep for the
// RandomWalk baseline.
func BenchmarkFig2bRandomWalk(b *testing.B) {
	yago, _, cfg := benchSetup(b)
	sc := yago.Scenario("actors")
	cuts := cfg.Cuts()
	for i := 0; i < b.N; i++ {
		best := 0.0
		for size := 2; size <= 6; size++ {
			q := queryOfSize(b, yago, size)
			ranking := eval.Ranking(yago.Graph, q, eval.AlgRandomWalk, cfg, cfg.MaxContext)
			curve := eval.F1Curve(ranking, sc.GroundTruthIDs(yago.Graph, size), cuts)
			if m, _ := eval.MaxF1(cuts, curve); m > best {
				best = m
			}
		}
		b.ReportMetric(best, "maxF1")
	}
}

// BenchmarkFig3AvgQuality regenerates Figure 3: averaged F1 curves and the
// ContextRW-over-RandomWalk advantage.
func BenchmarkFig3AvgQuality(b *testing.B) {
	yago, _, cfg := benchSetup(b)
	for i := 0; i < b.N; i++ {
		qd, err := eval.ComputeQuality(yago, "actors", cfg)
		if err != nil {
			b.Fatal(err)
		}
		f3 := eval.Fig3(qd)
		b.ReportMetric(f3.Advantage(), "advantage")
	}
}

// BenchmarkFig4QuerySize regenerates Figure 4: F1 vs query size at fixed
// context sizes.
func BenchmarkFig4QuerySize(b *testing.B) {
	yago, _, cfg := benchSetup(b)
	for i := 0; i < b.N; i++ {
		qd, err := eval.ComputeQuality(yago, "actors", cfg)
		if err != nil {
			b.Fatal(err)
		}
		f4 := eval.Fig4(qd)
		b.ReportMetric(f4.F1At[eval.AlgContextRW][100][6], "F1@100_q6")
	}
}

// BenchmarkFig5ContextTimeContextRW regenerates Figure 5's ContextRW
// series: context selection time as the query grows.
func BenchmarkFig5ContextTimeContextRW(b *testing.B) {
	yago, _, cfg := benchSetup(b)
	q := queryOfSize(b, yago, 5)
	sel := ctxsel.ContextRW{Walks: cfg.Walks, Seed: cfg.Seed, Parallelism: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Select(yago.Graph, q, 100)
	}
}

// BenchmarkFig5ContextTimeRandomWalk regenerates Figure 5's RandomWalk
// series (the paper's 1–2 orders-of-magnitude slower baseline).
func BenchmarkFig5ContextTimeRandomWalk(b *testing.B) {
	yago, _, _ := benchSetup(b)
	q := queryOfSize(b, yago, 5)
	sel := ctxsel.RandomWalk{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Select(yago.Graph, q, 100)
	}
}

// BenchmarkFig6PathLength regenerates Figure 6: mining+scoring time as the
// maximum metapath length grows (length 20, the most expensive point).
func BenchmarkFig6PathLength(b *testing.B) {
	yago, _, cfg := benchSetup(b)
	q := queryOfSize(b, yago, 3)
	sel := ctxsel.ContextRW{Walks: cfg.Walks / 4, Seed: cfg.Seed, MaxLength: 20, Parallelism: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Select(yago.Graph, q, 100)
	}
}

// BenchmarkTable2MaxF1 regenerates Table 2: YAGO-like vs LinkedMDB-like
// maximum F1 (ContextRW, actors).
func BenchmarkTable2MaxF1(b *testing.B) {
	yago, lmdb, cfg := benchSetup(b)
	for i := 0; i < b.N; i++ {
		yq, err := eval.ComputeQuality(yago, "actors", cfg)
		if err != nil {
			b.Fatal(err)
		}
		lq, err := eval.ComputeQuality(lmdb, "actors", cfg)
		if err != nil {
			b.Fatal(err)
		}
		t2 := eval.Table2(yq, lq)
		b.ReportMetric(t2.Rows[2]["yago-like"][0], "yagoMaxF1_q2")
		b.ReportMetric(t2.Rows[2]["linkedmdb-like"][0], "lmdbMaxF1_q2")
	}
}

// BenchmarkTable3PathCount regenerates Table 3: F1 across |M| × |C|.
func BenchmarkTable3PathCount(b *testing.B) {
	yago, _, cfg := benchSetup(b)
	for i := 0; i < b.N; i++ {
		t3, err := eval.Table3(yago, "actors", cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t3.F1[1][0], "F1@100_M5")
	}
}

// BenchmarkFig7CreatedInst regenerates Figure 7: the created instance
// distribution and its notability.
func BenchmarkFig7CreatedInst(b *testing.B) {
	a := benchActorsCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, ok := a.FindNC.ByName("created")
		if !ok {
			b.Fatal("created missing")
		}
		if s := a.Fig7Render(); len(s) == 0 {
			b.Fatal("empty render")
		}
		b.ReportMetric(c.Score, "score")
	}
}

// BenchmarkFig8PrizeCard regenerates Figure 8: the hasWonPrize cardinality
// distribution (not notable).
func BenchmarkFig8PrizeCard(b *testing.B) {
	a := benchActorsCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, ok := a.FindNC.ByName("hasWonPrize")
		if !ok {
			b.Fatal("hasWonPrize missing")
		}
		if s := a.Fig8Render(); len(s) == 0 {
			b.Fatal("empty render")
		}
		b.ReportMetric(c.CardP, "cardP")
	}
}

// BenchmarkFig9Significance regenerates Figure 9: per-label significance
// probabilities under FindNC vs RWMult.
func BenchmarkFig9Significance(b *testing.B) {
	a := benchActorsCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := a.Fig9()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		wrongRW := 0
		for _, r := range rows {
			if r.RWMultNotable && !r.FindNCNotable {
				wrongRW++
			}
		}
		b.ReportMetric(float64(wrongRW), "rwOnlyNotables")
	}
}

// BenchmarkMetricsComparison regenerates the §4.2 rank-switch comparison.
func BenchmarkMetricsComparison(b *testing.B) {
	a := benchActorsCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := eval.RunMetricsComparison(a)
		b.ReportMetric(float64(m.Switches["FindNC"]), "findncSwitches")
		b.ReportMetric(float64(m.Switches["KL"]), "klSwitches")
		b.ReportMetric(float64(m.Switches["EMD"]), "emdSwitches")
	}
}

// BenchmarkAuthorsCase regenerates the Adams/Pratchett test case.
func BenchmarkAuthorsCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ac, err := eval.RunAuthorsCase(benchSeed, 50000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ac.Influences.InstP, "influencesP")
		b.ReportMetric(ac.Created.InstP, "createdP")
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationUniformWalk compares informativeness-weighted mining
// (Eq. 1) against uniform edge choice: the reported metric is the F1 each
// achieves on the actors scenario.
func BenchmarkAblationUniformWalk(b *testing.B) {
	yago, _, cfg := benchSetup(b)
	sc := yago.Scenario("actors")
	q := queryOfSize(b, yago, 5)
	gt := sc.GroundTruthIDs(yago.Graph, 5)
	for i := 0; i < b.N; i++ {
		for _, uniform := range []bool{false, true} {
			sel := ctxsel.ContextRW{Walks: cfg.Walks, Seed: cfg.Seed, Uniform: uniform}
			ranking := sel.Select(yago.Graph, q, 100)
			f1 := eval.F1Curve(ranking, gt, []int{100})[0]
			if uniform {
				b.ReportMetric(f1, "uniformF1")
			} else {
				b.ReportMetric(f1, "weightedF1")
			}
		}
	}
}

// BenchmarkAblationSelectors compares all four context selectors on the
// same query.
func BenchmarkAblationSelectors(b *testing.B) {
	yago, _, cfg := benchSetup(b)
	q := queryOfSize(b, yago, 3)
	selectors := []ctxsel.Selector{
		ctxsel.ContextRW{Walks: cfg.Walks, Seed: cfg.Seed},
		ctxsel.RandomWalk{},
		ctxsel.SimRank{},
		ctxsel.Jaccard{},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := selectors[i%len(selectors)]
		if got := sel.Select(yago.Graph, q, 50); len(got) == 0 {
			b.Fatalf("%s returned nothing", sel.Name())
		}
	}
}

// BenchmarkAblationScoring compares the multinomial test against the
// χ²-test scoring path on the same distributions.
func BenchmarkAblationScoring(b *testing.B) {
	a := benchActorsCase(b)
	created, ok := a.FindNC.ByName("created")
	if !ok {
		b.Fatal("created missing")
	}
	pi := stats.Normalize(dist.ContextFloats(created.Inst.Context))
	obs := created.Inst.Query
	m := stats.Multinomial{Seed: benchSeed}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			m.Test(pi, obs)
		} else {
			stats.ChiSquare(pi, obs)
		}
	}
}

// BenchmarkAblationDistKinds compares notable counts when only the
// instance test, only the cardinality test, or the paper's max rule is
// applied.
func BenchmarkAblationDistKinds(b *testing.B) {
	a := benchActorsCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		instOnly, cardOnly, maxRule := 0, 0, 0
		for _, c := range a.FindNC.Characteristics {
			if c.InstScore > 0 {
				instOnly++
			}
			if c.CardScore > 0 {
				cardOnly++
			}
			if c.Notable() {
				maxRule++
			}
		}
		b.ReportMetric(float64(instOnly), "instOnly")
		b.ReportMetric(float64(cardOnly), "cardOnly")
		b.ReportMetric(float64(maxRule), "maxRule")
	}
}

// BenchmarkMultinomialExactVsMC measures the exact/Monte-Carlo crossover
// on a mid-sized test.
func BenchmarkMultinomialExactVsMC(b *testing.B) {
	pi := []float64{0.4, 0.3, 0.2, 0.1}
	obs := []int{5, 3, 2, 6}
	exact := stats.Multinomial{ExactLimit: 1 << 20, Seed: 1}
	mc := stats.Multinomial{ExactLimit: 1, Samples: 20000, Seed: 1}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exact.Test(pi, obs)
		}
	})
	b.Run("montecarlo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mc.Test(pi, obs)
		}
	})
}

// BenchmarkCorrelationExtension measures the future-work attribute
// correlation scan on the actors context.
func BenchmarkCorrelationExtension(b *testing.B) {
	a := benchActorsCase(b)
	yago, _, _ := benchSetup(b)
	labels := yago.Graph.LabelsOf(append(a.Query, a.Context...))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs := corr.Find(yago.Graph, a.Query, a.Context, labels, corr.Options{
			Test: stats.Multinomial{Seed: benchSeed},
		})
		if len(pairs) == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkEndToEndFindNC measures the full pipeline (context selection +
// all label tests) on the five-actor query.
func BenchmarkEndToEndFindNC(b *testing.B) {
	yago, _, cfg := benchSetup(b)
	g := yago.Graph
	engine := NewEngine(g, Options{
		ContextSize: 100,
		Walks:       cfg.Walks,
		Seed:        benchSeed,
	})
	names := gen.Table1["actors"][:5]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := engine.SearchNames(names...)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Characteristics) == 0 {
			b.Fatal("no characteristics")
		}
	}
}
