// Package notable is the public API of the notable-characteristics-search
// library, a reproduction of "Notable Characteristics Search through
// Knowledge Graphs" (Mottin et al., EDBT 2018).
//
// Given a knowledge graph and a small set of query entities, the library
// finds the context of the query — the entities most similar to it — and
// the notable characteristics: edge labels whose value or cardinality
// distribution over the query deviates significantly from the context's.
//
// Quick start:
//
//	b := notable.NewBuilder(64)
//	b.AddEdge("Angela Merkel", "studied", "Physics")
//	// ... more edges ...
//	g := b.Build()
//
//	engine := notable.NewEngine(g, notable.Options{ContextSize: 30})
//	query, err := engine.Resolve("Angela Merkel", "Barack Obama")
//	// handle err ...
//	res, err := engine.Do(ctx, notable.Query{Nodes: query})
//	for _, c := range res.NotableOnly() {
//	    fmt.Printf("%s (score %.2f, %s)\n", c.Name, c.Score, c.Kind)
//	}
//
// Graphs can be built programmatically (NewBuilder), loaded from triple
// files (LoadGraphFile), or restored from binary snapshots (ReadSnapshot).
//
// # Requests
//
// Serving is request-scoped. A Query carries the query nodes plus
// per-request overrides of the engine's Options (context size, selector,
// significance level, unseen-value policy, test samples, parallelism,
// top-k cut) — zero values inherit the engine's defaults, so
// Query{Nodes: q} reproduces engine-level configuration exactly.
// Engine.Do serves one request, Engine.DoBatch a batch (amortizing the
// cold path across overlapping queries), and Engine.DoStream a batch as a
// stream of Outcomes that yields each result the moment it completes
// instead of barriering — the first result of an overlapping batch
// typically lands in a fraction of the batch's total wall-clock.
//
// Every entry point takes a context.Context and honors cancellation
// mid-request: a dropped request stops burning CPU within one PageRank
// sweep or one label test and returns ctx.Err(). Failures are typed —
// ErrEmptyQuery (errors.Is) and *UnresolvedError (errors.As) — never
// bare strings. The pre-context entry points (Search, SearchBatch,
// SearchNames, Compare) remain as thin deprecated wrappers over Do and
// DoBatch with identical output.
//
// # Caching and determinism
//
// An Engine memoizes four layers of repeated work in one bounded LRU
// (Options.CacheSize, optionally byte-budgeted via Options.CacheBytes,
// optionally sharded via Options.CacheShards for concurrent traffic).
// The selector layer caches score vectors and ranked contexts, so a warm
// query skips metapath mining and walking; the comparison layer caches
// per-label test records, so a warm query also skips distribution
// building and multinomial testing — a fully warm repeated Search
// recomputes nothing but the top-k cut. Two more layers serve the
// interactive-refinement workload, where consecutive queries overlap
// rather than repeat: the seed layer (Options.SeedCacheBytes) keeps
// single-seed PageRank vectors, so adding or removing one entity from a
// RandomWalk-selected query re-solves only the new entity; and the null
// layer keeps the multinomial test's Monte-Carlo null distributions,
// which depend only on the context distribution — labels whose context
// counts survive a refinement skip the sampling loop outright.
// CacheStats exposes hit/miss counters and resident bytes per layer.
//
// Cache entries are epoch-keyed: every key derived from graph state
// folds in the epoch of the view the request pinned, so an entry
// computed before an ApplyTriples bump is never served after it — a
// post-mutation query recomputes against the new graph, while re-running
// a query at an unchanged epoch still pure-hits. A no-op mutation batch
// keeps the epoch, and compaction keeps it too, so warm caches survive
// both. The null layer is keyed by the context distribution itself
// rather than the epoch — a distribution that happens to survive a
// mutation legitimately reuses its null, since the test depends on
// nothing else.
//
// # Live mutation
//
// An Engine's graph is live: ApplyTriples(ctx, adds, dels) applies a
// triple batch — interning new nodes and labels on first sight — and
// publishes the result as a new epoch without rebuilding the base CSR
// or pausing traffic. Requests pin the epoch current when they start
// and run against it end to end, so concurrent Do/DoBatch/DoStream
// calls never observe a torn graph; results at any epoch are bitwise
// identical to a from-scratch engine on the equivalent graph. Past
// Options.CompactThreshold accumulated changes, a background compactor
// folds the overlay into a fresh flat base — same epoch, same bits,
// base-speed reads. Epoch, overlay sizes, and compaction counters are
// exposed via VersionStats; see docs/mutability.md for the model.
//
// # Batching and streaming
//
// DoBatch serves many independent queries in one pass over the cold
// pipeline: each query consults the cache first, the misses share one
// multi-source PageRank solve (each distinct seed across the batch is
// solved once, with dense iterations blocked through a multi-vector
// gather kernel on large graphs), and the comparison stages fan out
// through a process-wide bounded executor. Batches of overlapping cold
// queries — eval sweeps, batch entity profiling, bursty traffic — run
// severalfold faster than sequential Do calls with identical output.
//
// DoStream runs the same deduplicated batch but releases each query to
// its comparison stage as soon as its PageRank sum folds, emitting
// results in completion order: time-to-first-result drops from "the
// whole batch" to roughly "one query", while per-query results stay
// bitwise identical to solo Do calls.
//
// # Serving
//
// Malformed requests fail fast with typed errors: ErrBadQuery (errors.Is)
// rejects out-of-range overrides — negative TopK, ContextSize, or
// TestSamples, Alpha outside (0, 1) — naming the offending field, before
// any graph work runs. Query.Degrade opts a Do call into
// deadline-degraded mode: when its ctx expires during the comparison
// stage, the call returns the labels tested so far (always a
// prefix-consistent subset of the full report, each record bitwise equal
// to the full run's) together with a *DegradedError carrying
// tested/total counts, instead of discarding the work.
//
// cmd/ncserved serves the engine over HTTP — graceful drain on
// SIGTERM, per-request deadlines with degraded-by-default responses,
// panic isolation, and load shedding; see internal/server and
// docs/serving.md.
//
// Neither caching, batching, nor parallelism changes results: every
// randomized component takes an explicit seed, label tests run on a
// bounded worker pool writing to fixed per-label slots, the dense
// PageRank gather is row-partitioned, and every batched stage replicates
// its sequential arithmetic, so every cache state, batch size, and worker
// count produces bitwise-identical output.
package notable

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ctxsel"
	"repro/internal/dist"
	"repro/internal/kg"
	"repro/internal/ntriples"
	"repro/internal/obs"
	"repro/internal/ppr"
	"repro/internal/qcache"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/topk"
	"repro/internal/wal"
)

// Re-exported graph types: the kg package is internal, the facade exposes
// what callers need.
type (
	// Graph is an immutable labeled knowledge graph.
	Graph = kg.Graph
	// Builder constructs graphs.
	Builder = kg.Builder
	// NodeID identifies a graph node.
	NodeID = kg.NodeID
	// LabelID identifies an edge label.
	LabelID = kg.LabelID
	// Result is a completed search: context plus tested characteristics.
	Result = core.Result
	// Characteristic is the per-label test record.
	Characteristic = core.Characteristic
	// ContextItem is a scored context node.
	ContextItem = topk.Item
	// Triple is one (subject, predicate, object) fact for ApplyTriples.
	Triple = kg.Triple
	// VersionStats summarizes the engine's live-graph store: epoch,
	// overlay triple counts, compaction counters.
	VersionStats = kg.VersionedStats
)

// Selector names accepted by Options.Selector.
const (
	SelectorContextRW  = "contextrw"
	SelectorRandomWalk = "randomwalk"
	SelectorSimRank    = "simrank"
	SelectorJaccard    = "jaccard"
)

// UnseenPolicy values for Options.Policy.
const (
	// PolicyStrict is the paper's formula: query values the context never
	// shows are maximally notable.
	PolicyStrict = "strict"
	// PolicyPooled pools idiosyncratic values; see the dist package for
	// when this matters.
	PolicyPooled = "pooled"
)

// NewBuilder returns a graph builder with capacity hints for nEdges edges.
func NewBuilder(nEdges int) *Builder { return kg.NewBuilder(nEdges) }

// Options configures an Engine. The zero value reproduces the paper's
// defaults: ContextRW selection, context size 100, significance 0.05,
// strict unseen-value policy.
type Options struct {
	// ContextSize is k, the number of context nodes (default 100).
	ContextSize int
	// Selector is one of the Selector* constants (default ContextRW).
	Selector string
	// Walks is the PathMining budget for ContextRW (default 200000).
	// Overridable per request via Query.Walks.
	Walks int
	// Damping is the RandomWalk selector's PageRank restart parameter c
	// (default 0.8; the paper also reports 0.2 for the baseline). Only
	// the randomwalk selector consults it. Overridable per request via
	// Query.Damping.
	Damping float64
	// Alpha is the significance level (default 0.05).
	Alpha float64
	// Policy is PolicyStrict or PolicyPooled (default strict).
	Policy string
	// IncludeInverse keeps the auto-generated l⁻¹ labels in reports.
	IncludeInverse bool
	// Seed drives all randomized components (default 1).
	Seed int64
	// Parallelism bounds the workers a search draws from the shared
	// executor — label tests within one query, and queries within one
	// SearchBatch. 0 means the core default (4). Like every concurrency
	// knob here it never changes results, only wall-clock.
	Parallelism int
	// CacheSize bounds the engine's query cache: the number of memoized
	// entries across all four cache layers — selector score
	// vectors/contexts, per-label test records, per-seed PageRank
	// vectors, and Monte-Carlo null distributions (see internal/qcache).
	// 0 selects DefaultCacheSize; negative disables caching. Caching
	// never changes results — every randomized component is seeded — it
	// only skips repeated work: a warm repeat of a query skips metapath
	// mining, walking, distribution building, and multinomial testing
	// entirely, and an overlapping query re-solves only its new seeds.
	CacheSize int
	// CacheBytes optionally bounds the query cache by estimated resident
	// bytes alongside the entry cap. Selector entries weigh ~8 bytes per
	// graph node (a dense score vector); per-label test records are small.
	// 0 means no byte bound; CacheStats reports per-layer residency either
	// way, so a budget can be sized from observed load.
	CacheBytes int64
	// TestSamples overrides the multinomial test's Monte-Carlo sample
	// count (default 20000). Lower is faster and coarser: the sampling
	// error of a p-value scales with 1/√samples. A serving deployment
	// trading test resolution for latency sets this explicitly; results
	// remain deterministic for any value.
	TestSamples int
	// TestExactLimit overrides the outcome-composition count up to which
	// the test enumerates exactly instead of sampling (default 200000).
	TestExactLimit int
	// SeedCacheBytes bounds the seed-vector cache layer: single-seed
	// PageRank vectors memoized across searches (RandomWalk selection),
	// so a query overlapping an earlier one — interactive refinement —
	// solves only its new entities. Vectors weigh up to ~8 bytes per
	// graph node each (less while a solve stays frontier-sparse). 0
	// selects DefaultSeedCacheBytes; negative disables the layer. Like
	// every cache layer it never changes results, only repeated work.
	SeedCacheBytes int64
	// CacheShards splits the query cache into 2^⌈log₂ shards⌉
	// shared-nothing shards (per-shard lock and LRU, budgets split
	// evenly) to cut mutex pressure under concurrent serving traffic.
	// 0 or 1 keeps the single exact LRU — the default, whose byte-budget
	// enforcement is exact; see internal/qcache for the (slight) budget
	// slack sharding introduces.
	CacheShards int
	// TypePredicate names the predicate that ApplyTriples routes to node
	// types instead of edges — it should match the predicate the graph
	// was loaded with (LoadGraphFile uses "type", the default here).
	// Set "-" to treat every ingested predicate as an edge label.
	TypePredicate string
	// CompactThreshold is the live-ingest overlay size (applied adds +
	// deletes since the last base CSR) past which a background compactor
	// folds the overlay into a fresh flat base. 0 selects the kg-level
	// default (4096); negative disables automatic compaction. Compaction
	// keeps the epoch and changes no result bits — it only restores
	// base-speed reads.
	CompactThreshold int
}

// DefaultCacheSize is the query-cache capacity used when Options.CacheSize
// is zero. A warm query occupies one selector entry plus one entry per
// tested label, so size CacheSize to roughly (hot queries) × (labels per
// query + 1) — the default keeps a few hundred fully-warm queries on
// typical label counts. Entry sizes range from a per-label record to an
// n-float score vector; Options.CacheBytes and the per-layer budgets
// below bound the big layers by bytes.
const DefaultCacheSize = 4096

// DefaultSeedCacheBytes bounds the seed-vector layer when
// Options.SeedCacheBytes is zero: 64 MiB keeps tens of hot entities
// resident on million-node graphs (a dense vector is 8·n bytes) without
// letting an entity sweep displace the rest of the cache.
const DefaultSeedCacheBytes = 64 << 20

// DefaultNullCacheBytes bounds the comparison stage's Monte-Carlo
// null-distribution layer (~8 bytes per test sample per distinct context
// distribution): 32 MiB holds thousands of memoized distributions at the
// default sample count. Not separately configurable — Options.CacheBytes
// bounds the total when set.
const DefaultNullCacheBytes = 32 << 20

// Engine runs searches against one live graph. Create with NewEngine;
// safe for concurrent use once constructed, including concurrent
// ApplyTriples: every request pins the epoch-stamped view current when
// it started and runs against it end to end, so a mutation landing
// mid-request never tears a result.
type Engine struct {
	vg    *kg.Versioned
	idx   atomic.Pointer[search.Index]
	opt   Options
	cache *qcache.Cache
	// wal is the write-ahead log behind a durable engine (nil otherwise;
	// see NewDurableEngine). Armed only after recovery replay, so the
	// replayed batches — already in the log — are not logged again.
	wal atomic.Pointer[wal.Log]
	// ingestMu orders durable ingest: the epoch sequence the store
	// publishes must enter the log in the same order, so Apply and Append
	// happen under one lock (commit waits happen outside it).
	ingestMu sync.Mutex
	// walLogf receives checkpoint-failure lines (durable engines only).
	walLogf func(format string, args ...any)
	// recovered is the boot-time replay count, for observability;
	// skippedCkpts counts checkpoint files boot recovery discarded.
	recovered    int
	skippedCkpts int
	// selMemo caches the request-derived state — epoch tag, wrapped
	// selector, cache-key prefix — for one (epoch, effective options)
	// pair, so the steady-state serving path (same options, unchanged
	// graph) builds no strings per request. Misses (an epoch bump or an
	// override mix) just rebuild; correctness never depends on a hit.
	selMemo atomic.Pointer[optState]
	// met is the engine's always-on metrics bundle: per-stage and
	// end-to-end latency histograms registered once here so the serving
	// hot path pays only atomic adds. Exposed via Metrics().
	met *engineMetrics
}

// engineMetrics holds the engine's latency histograms and their
// registry. The histogram pointers are per-engine constants — threaded
// into ppr/core/wal options at request-translation time — so the
// selMemo'd selector stays valid and no request ever consults the
// registry.
type engineMetrics struct {
	reg      *obs.Registry
	solve    *obs.Histogram // nc_stage_seconds{stage="ppr_solve"}
	sel      *obs.Histogram // nc_stage_seconds{stage="ctx_select"}
	compare  *obs.Histogram // nc_stage_seconds{stage="compare"}
	stage    *core.StageObs // sel+compare, threaded via core.Options.Obs
	do       *obs.Histogram // nc_request_seconds{op="do"}
	doBatch  *obs.Histogram // nc_request_seconds{op="do_batch"}
	doStream *obs.Histogram // nc_request_seconds{op="do_stream"}
	ingest   *obs.Histogram // nc_ingest_seconds
	fsync    *obs.Histogram // nc_wal_fsync_seconds
}

func newEngineMetrics() *engineMetrics {
	reg := obs.NewRegistry()
	const stageHelp = "Pipeline stage latency in seconds."
	const reqHelp = "End-to-end engine request latency in seconds."
	m := &engineMetrics{
		reg:      reg,
		solve:    reg.NewHistogram("nc_stage_seconds", stageHelp, "stage", "ppr_solve"),
		sel:      reg.NewHistogram("nc_stage_seconds", stageHelp, "stage", "ctx_select"),
		compare:  reg.NewHistogram("nc_stage_seconds", stageHelp, "stage", "compare"),
		do:       reg.NewHistogram("nc_request_seconds", reqHelp, "op", "do"),
		doBatch:  reg.NewHistogram("nc_request_seconds", reqHelp, "op", "do_batch"),
		doStream: reg.NewHistogram("nc_request_seconds", reqHelp, "op", "do_stream"),
		ingest:   reg.NewHistogram("nc_ingest_seconds", "ApplyTriples ingest latency in seconds."),
		fsync:    reg.NewHistogram("nc_wal_fsync_seconds", "WAL fsync latency in seconds (durable engines only)."),
	}
	m.stage = &core.StageObs{Select: m.sel, Compare: m.compare}
	return m
}

// Metrics returns the engine's metrics registry — stage histograms
// (ppr_solve, ctx_select, compare), end-to-end request histograms,
// ingest and WAL-fsync latency — for exposition alongside a server's
// own registry (internal/server merges it into GET /metrics).
func (e *Engine) Metrics() *obs.Registry { return e.met.reg }

// optState is one memoized translation of effective options at an epoch.
type optState struct {
	epoch uint64
	opt   Options
	tag   string
	sel   ctxsel.Selector
}

// NewEngine prepares an engine (including the entity-name index) for g,
// which becomes epoch 0 of the engine's live graph store. Applied
// triples live only in memory; NewDurableEngine adds a write-ahead log
// so acknowledged batches survive process death.
func NewEngine(g *Graph, opt Options) *Engine { return newEngine(g, opt, 0) }

// newEngine is the shared constructor: g becomes epoch startEpoch of the
// live store (non-zero only when recovering from a checkpoint).
func newEngine(g *Graph, opt Options, startEpoch uint64) *Engine {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.TypePredicate == "" {
		opt.TypePredicate = "type"
	}
	size := opt.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	cfg := qcache.Config{Capacity: size, ByteBudget: opt.CacheBytes, Shards: opt.CacheShards}
	cfg.LayerBudgets[qcache.LayerNull] = DefaultNullCacheBytes
	if opt.SeedCacheBytes >= 0 {
		seedBudget := opt.SeedCacheBytes
		if seedBudget == 0 {
			seedBudget = DefaultSeedCacheBytes
		}
		cfg.LayerBudgets[qcache.LayerSeed] = seedBudget
	}
	typePred := opt.TypePredicate
	if typePred == "-" {
		typePred = ""
	}
	e := &Engine{
		opt:   opt,
		cache: qcache.NewSharded(cfg),
		met:   newEngineMetrics(),
	}
	e.vg = kg.NewVersioned(g, kg.VersionedOptions{
		TypePredicate:    typePred,
		CompactThreshold: opt.CompactThreshold,
		StartEpoch:       startEpoch,
		// Compaction produces exactly what a checkpoint wants — a flat
		// graph at a known epoch — so durable engines piggyback on it. A
		// no-op for non-durable engines (wal stays nil).
		OnCompact: e.checkpointView,
	})
	e.idx.Store(search.NewIndex(g))
	return e
}

// ApplyTriples applies a mutation batch — dels first, then adds — and
// publishes the result as a new graph epoch, without rebuilding the base
// CSR or interrupting traffic: requests in flight finish on the epoch
// they pinned, requests arriving afterwards see the new graph. Deletes
// remove an edge and its inverse mirror (unknown names and absent edges
// are no-ops); adds intern new nodes and labels on first sight; triples
// whose predicate equals Options.TypePredicate assign node types. A
// batch with no effect keeps the current epoch, so warm caches stay
// warm. Returns the epoch now current.
//
// Results at the new epoch are exactly those of a graph rebuilt from
// scratch with the mutation applied — cache layers are epoch-keyed, so
// nothing stale is ever served — and when the accumulated overlay
// crosses Options.CompactThreshold a background compactor folds it into
// a fresh base without changing the epoch or any result bits.
//
// On a durable engine (NewDurableEngine), an effective batch is appended
// to the write-ahead log and fsync'd (per the configured sync policy)
// before ApplyTriples returns: a nil error means the batch survives
// process death. A WAL failure returns an error wrapping ErrDurability —
// the in-memory epoch may already include the batch, but it was never
// acknowledged as durable, and the engine refuses further ingest until
// restarted (searches continue unharmed).
func (e *Engine) ApplyTriples(ctx context.Context, adds, dels []Triple) (uint64, error) {
	start := time.Now()
	epoch, err := e.applyTriples(ctx, adds, dels)
	e.met.ingest.Observe(time.Since(start))
	return epoch, err
}

// applyTriples is ApplyTriples without the ingest timer.
func (e *Engine) applyTriples(ctx context.Context, adds, dels []Triple) (uint64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return e.vg.View().Epoch, err
		}
	}
	l := e.wal.Load()
	var commit wal.Commit
	if l != nil {
		e.ingestMu.Lock()
	}
	before := e.vg.View().Epoch
	view, err := e.vg.Apply(adds, dels)
	if err == nil && l != nil && view.Epoch != before {
		// Effective batch: log it at its post-apply epoch while still
		// holding ingestMu, so log order always equals epoch order. The
		// fsync wait (commit) happens after unlock — concurrent batches
		// group-commit instead of serializing on the disk.
		commit, err = l.Append(wal.Record{Epoch: view.Epoch, Adds: adds, Dels: dels})
		if err != nil {
			err = fmt.Errorf("%w: %v", ErrDurability, err)
		}
	}
	if l != nil {
		e.ingestMu.Unlock()
	}
	if err != nil {
		if view == nil {
			return e.vg.View().Epoch, fmt.Errorf("%w: %v", ErrBadTriple, err)
		}
		return view.Epoch, err
	}
	// New nodes need the name index rebuilt so Resolve/Suggest see them.
	// Names are immutable and IDs append-only, so an index lagging a
	// node-free mutation stays correct as-is.
	if idx := e.idx.Load(); idx.NumNodes() < view.G.NumNodes() {
		e.idx.Store(search.NewIndex(view.G))
	}
	if commit != nil {
		if cerr := commit(); cerr != nil {
			return view.Epoch, fmt.Errorf("%w: %v", ErrDurability, cerr)
		}
	}
	return view.Epoch, nil
}

// Epoch returns the current graph epoch: 0 at construction, +1 per
// effective ApplyTriples batch.
func (e *Engine) Epoch() uint64 { return e.vg.View().Epoch }

// VersionStats summarizes the live graph store: current epoch, overlay
// add/delete counts since the last base rebuild, completed rebuilds, and
// the last compaction's duration.
func (e *Engine) VersionStats() VersionStats { return e.vg.Stats() }

// Compact synchronously folds any accumulated overlay into a fresh flat
// base CSR at the current epoch. Results are unchanged bit for bit;
// reads return to base speed. Normally the background compactor does
// this on its own past Options.CompactThreshold.
func (e *Engine) Compact() { e.vg.Compact() }

// CacheStats reports the query cache's counters, aggregated over all
// shards and broken down per layer (Stats.Layers): the selector layer
// (one entry per query's score vector or ranked context, ~8 bytes per
// graph node each), the comparison layer (one small entry per tested
// label), the seed layer (one PageRank vector per hot entity), and the
// null layer (one Monte-Carlo null distribution per distinct context
// distribution). A fully warm repeated Search performs exactly one
// selector hit plus one hit per tested label and zero misses; a
// refinement step shows seed-layer hits for the retained entities and
// null-layer hits for the labels whose context distribution survived.
// A cache-disabled engine reports zeros.
func (e *Engine) CacheStats() qcache.Stats { return e.cache.Stats() }

// Graph returns the engine's current graph — the epoch published by the
// latest effective ApplyTriples, or the construction graph before any.
// The returned graph is immutable; later mutations publish new graphs
// and never touch one already handed out.
func (e *Engine) Graph() *Graph { return e.vg.View().G }

// Resolve maps entity names (exact or fuzzy) to node IDs. Names that
// match nothing are reported through an *UnresolvedError carrying the
// missing names (recover it with errors.As for did-you-mean handling).
func (e *Engine) Resolve(names ...string) ([]NodeID, error) {
	ids, missing := e.idx.Load().Resolve(names)
	if len(missing) > 0 {
		return ids, &UnresolvedError{Missing: missing}
	}
	return ids, nil
}

// Suggest returns up to limit candidate entities for a mention.
func (e *Engine) Suggest(mention string, limit int) []search.Hit {
	return e.idx.Load().Lookup(mention, limit)
}

// seedCache returns the cache the RandomWalk selector's per-seed PageRank
// vectors memoize through — the engine cache, unless the layer (or
// caching altogether) is disabled.
func (e *Engine) seedCache() *qcache.Cache {
	if e.opt.SeedCacheBytes < 0 {
		return nil
	}
	return e.cache
}

// epochTag renders a view's epoch as the cache tag folded into every
// graph-derived cache key, so entries computed against one epoch are
// never served at another.
func epochTag(view *kg.View) string {
	return "e" + strconv.FormatUint(view.Epoch, 10)
}

// selectorFor instantiates the context selector configured by opt — the
// engine's options with any per-request overrides already applied — for
// the pinned view's epoch tag, which keys the seed-vector cache.
func (e *Engine) selectorFor(opt Options, tag string) ctxsel.Selector {
	switch opt.Selector {
	case SelectorRandomWalk:
		return ctxsel.RandomWalk{Opt: ppr.Options{
			Damping:   opt.Damping,
			SeedCache: e.seedCache(),
			CacheTag:  tag,
			SolveObs:  e.met.solve,
		}}
	case SelectorSimRank:
		return ctxsel.SimRank{}
	case SelectorJaccard:
		return ctxsel.Jaccard{}
	default:
		return ctxsel.ContextRW{Walks: opt.Walks, Seed: opt.Seed}
	}
}

// stateFor resolves the memoized request-derived state for opt at view's
// epoch, rebuilding (and re-memoizing) on any miss.
func (e *Engine) stateFor(opt Options, view *kg.View) *optState {
	if st := e.selMemo.Load(); st != nil && st.epoch == view.Epoch && st.opt == opt {
		return st
	}
	tag := epochTag(view)
	st := &optState{
		epoch: view.Epoch,
		opt:   opt,
		tag:   tag,
		sel:   e.cachedSelectorFor(e.selectorFor(opt, tag), opt, tag),
	}
	e.selMemo.Store(st)
	return st
}

// cachedSelector wraps a selector with the engine's query cache. For
// score-based selectors (ctxsel.Scorer) it memoizes the dense score
// vector, which subsumes the mined metapaths — a warm hit serves any
// context size with zero mining or walking. Other selectors memoize the
// ranked context per (query, k). Queries with duplicate nodes bypass the
// cache (see qcache.Key).
//
// pfx is precomputed from the request's EFFECTIVE options (engine
// defaults with per-request overrides applied) plus the pinned view's
// epoch, so a Walks/Damping override or a graph mutation can never
// collide with entries computed under other settings.
type cachedSelector struct {
	e     *Engine
	inner ctxsel.Selector
	pfx   string
}

// Name implements ctxsel.Selector.
func (cs cachedSelector) Name() string { return cs.inner.Name() }

// scoresFootprint is the byte accounting hint for a cached dense score
// vector.
func scoresFootprint(scores []float64, key string) int64 {
	return 8*int64(len(scores)) + int64(len(key)) + 48
}

// Select implements ctxsel.Selector.
func (cs cachedSelector) Select(g *kg.Graph, query []NodeID, k int) []topk.Item {
	return cs.SelectCtx(context.Background(), g, query, k)
}

// SelectCtx implements ctxsel.CtxSelector: the cache consult is free
// either way, the inner selector gets ctx when it honors one, and a score
// vector cut short by cancellation is never stored.
func (cs cachedSelector) SelectCtx(ctx context.Context, g *kg.Graph, query []NodeID, k int) []topk.Item {
	prefix := cs.prefix()
	if scorer, ok := cs.inner.(ctxsel.Scorer); ok {
		key, cacheable := qcache.Key(prefix, query)
		if !cacheable {
			return ctxsel.Select(ctx, cs.inner, g, query, k)
		}
		if v, hit := cs.e.cache.Get(key); hit {
			return ctxsel.TopKFromScores(v.([]float64), query, k)
		}
		var scores []float64
		if cscorer, ok := cs.inner.(ctxsel.CtxScorer); ok {
			scores = cscorer.ScoresCtx(ctx, g, query)
		} else {
			scores = scorer.Scores(g, query)
		}
		if ctx.Err() != nil {
			return nil // partial vector: not stored, not usable
		}
		cs.e.cache.PutSized(key, scores, qcache.LayerSelector, scoresFootprint(scores, key))
		return ctxsel.TopKFromScores(scores, query, k)
	}
	key, cacheable := qcache.Key(fmt.Sprintf("%s|k%d", prefix, k), query)
	if !cacheable {
		return ctxsel.Select(ctx, cs.inner, g, query, k)
	}
	// Contexts are cached as private copies: callers own (and may mutate)
	// every slice they receive, matching the uncached selectors.
	if v, hit := cs.e.cache.Get(key); hit {
		return append([]topk.Item(nil), v.([]topk.Item)...)
	}
	items := ctxsel.Select(ctx, cs.inner, g, query, k)
	if ctx.Err() != nil {
		return nil
	}
	cs.e.cache.PutSized(key, append([]topk.Item(nil), items...),
		qcache.LayerSelector, 16*int64(len(items))+int64(len(key))+48)
	return items
}

func (cs cachedSelector) prefix() string { return cs.pfx }

// SelectBatch implements ctxsel.BatchSelector: each query consults the
// cache first, and only the misses enter the inner selector — batched
// through the multi-source PageRank solve when the inner selector
// provides it. Hits, misses, and every batch size produce exactly what
// per-query Select calls would.
func (cs cachedSelector) SelectBatch(g *kg.Graph, queries [][]NodeID, k int) [][]topk.Item {
	return cs.SelectBatchCtx(context.Background(), g, queries, k)
}

// scorerBatchPlan is the shared cache consult of the scorer-based batch
// paths: one pass over the queries serving hits through ready
// immediately and listing the misses for whichever solve (barriered or
// streaming) the caller dispatches; release stores and releases one
// solved miss. Hits, misses, and either solve produce exactly what
// per-query Select calls would.
type scorerBatchPlan struct {
	missIdx     []int
	missQueries [][]NodeID
	release     func(j int, scores []float64)
}

// planScorerBatch builds the consult plan for a scorer-based batch. A
// released score vector is stored only under a live ctx (the solvers
// only release complete vectors, but the gate keeps the contract
// obvious) and only for cacheable keys.
func (cs cachedSelector) planScorerBatch(ctx context.Context, g *kg.Graph, queries [][]NodeID, k int, ready func(i int, items []topk.Item)) scorerBatchPlan {
	prefix := cs.prefix()
	keys := make([]string, len(queries))
	var p scorerBatchPlan
	for i, q := range queries {
		key, cacheable := qcache.Key(prefix, q)
		if cacheable {
			if v, hit := cs.e.cache.Get(key); hit {
				ready(i, ctxsel.TopKFromScores(v.([]float64), q, k))
				continue
			}
			keys[i] = key
		}
		// Cache misses and uncacheable (duplicate-node) queries both go to
		// the solver; only the former are stored afterwards.
		p.missIdx = append(p.missIdx, i)
		p.missQueries = append(p.missQueries, q)
	}
	p.release = func(j int, scores []float64) {
		i := p.missIdx[j]
		if keys[i] != "" && ctx.Err() == nil {
			cs.e.cache.PutSized(keys[i], scores, qcache.LayerSelector, scoresFootprint(scores, keys[i]))
		}
		ready(i, ctxsel.TopKFromScores(scores, queries[i], k))
	}
	return p
}

// SelectBatchCtx implements ctxsel.CtxBatchSelector: cache hits first,
// then the misses enter the inner selector's barriered batch solve —
// CtxBatchScorer/BatchScorer before any streaming path, so a barriered
// batch keeps the blocked multi-vector gather kernel the streaming
// schedule trades away. Once ctx is done, unreleased entries stay nil.
func (cs cachedSelector) SelectBatchCtx(ctx context.Context, g *kg.Graph, queries [][]NodeID, k int) [][]topk.Item {
	out := make([][]topk.Item, len(queries))
	ready := func(i int, items []topk.Item) { out[i] = items }
	if _, isScorer := cs.inner.(ctxsel.Scorer); !isScorer {
		// Ranked-context caching is per (query, k); resolve query by query.
		for i, q := range queries {
			if ctx.Err() != nil {
				return out
			}
			out[i] = cs.SelectCtx(ctx, g, q, k)
		}
		return out
	}
	p := cs.planScorerBatch(ctx, g, queries, k, ready)
	if len(p.missQueries) == 0 {
		return out
	}
	var scores [][]float64
	if bs, ok := cs.inner.(ctxsel.CtxBatchScorer); ok {
		scores = bs.ScoresBatchCtx(ctx, g, p.missQueries)
		if ctx.Err() != nil {
			return out
		}
	} else if bs, ok := cs.inner.(ctxsel.BatchScorer); ok {
		scores = bs.ScoresBatch(g, p.missQueries)
	} else {
		scores = make([][]float64, len(p.missQueries))
		for j, q := range p.missQueries {
			if ctx.Err() != nil {
				return out
			}
			scores[j] = ctxselScores(ctx, cs.inner.(ctxsel.Scorer), g, q)
			if ctx.Err() != nil {
				return out
			}
		}
	}
	for j := range p.missQueries {
		p.release(j, scores[j])
	}
	return out
}

// ctxselScores resolves one query's score vector, threading ctx when the
// scorer supports it.
func ctxselScores(ctx context.Context, sc ctxsel.Scorer, g *kg.Graph, q []NodeID) []float64 {
	if cs, ok := sc.(ctxsel.CtxScorer); ok {
		return cs.ScoresCtx(ctx, g, q)
	}
	return sc.Scores(g, q)
}

// SelectStreamBatch implements ctxsel.StreamBatchSelector: cache hits
// release immediately (in query order), and the misses enter the inner
// selector's streaming solve, each releasing — and being stored — as its
// score vector folds. Every released context is exactly what a per-query
// Select would return; a cancelled ctx stops the solve within one sweep
// and withholds the unreleased queries.
func (cs cachedSelector) SelectStreamBatch(ctx context.Context, g *kg.Graph, queries [][]NodeID, k int, ready func(i int, items []topk.Item)) {
	scorer, isScorer := cs.inner.(ctxsel.Scorer)
	if !isScorer {
		// Ranked-context caching is per (query, k); resolve query by query,
		// releasing each as it completes.
		for i, q := range queries {
			if ctx.Err() != nil {
				return
			}
			items := cs.SelectCtx(ctx, g, q, k)
			if ctx.Err() != nil {
				return
			}
			ready(i, items)
		}
		return
	}
	p := cs.planScorerBatch(ctx, g, queries, k, ready)
	if len(p.missQueries) == 0 {
		return
	}
	if ss, ok := cs.inner.(ctxsel.StreamScorer); ok {
		ss.ScoresStream(ctx, g, p.missQueries, p.release)
		return
	}
	if bs, ok := cs.inner.(ctxsel.BatchScorer); ok {
		scores := bs.ScoresBatch(g, p.missQueries)
		for j := range p.missQueries {
			p.release(j, scores[j])
		}
		return
	}
	for j, q := range p.missQueries {
		if ctx.Err() != nil {
			return
		}
		scores := ctxselScores(ctx, scorer, g, q)
		if ctx.Err() != nil {
			return
		}
		p.release(j, scores)
	}
}

// cachedSelectorFor wraps sel with the engine cache unless caching is
// disabled. The cache-key prefix folds every effective option that can
// change a score vector — selector, Walks, Damping, Seed — plus the
// pinned view's epoch tag: a per-request override or an ApplyTriples
// bump lands in its own key space, while a request whose effective
// options and epoch match an earlier one (overridden or not) shares its
// entries.
func (e *Engine) cachedSelectorFor(sel ctxsel.Selector, opt Options, tag string) ctxsel.Selector {
	if e.cache == nil {
		return sel
	}
	pfx := fmt.Sprintf("%s|%s|w%d|d%v|s%d",
		sel.Name(), tag, opt.Walks, opt.Damping, opt.Seed)
	return cachedSelector{e: e, inner: sel, pfx: pfx}
}

// coreOptionsFor translates opt — the engine's options with any
// per-request overrides already applied — into the core pipeline's
// options, for a request pinned to view. The caches stay engine-level:
// overrides never fork cache state, they only reconfigure one request's
// pipeline, and the view's epoch rides in every cache key so entries
// from different graph versions never mix.
func (e *Engine) coreOptionsFor(opt Options, view *kg.View) core.Options {
	policy := dist.UnseenStrict
	if opt.Policy == PolicyPooled {
		policy = dist.UnseenPooled
	}
	st := e.stateFor(opt, view)
	return core.Options{
		ContextSize: opt.ContextSize,
		Selector:    st.sel,
		Test: stats.Multinomial{
			Alpha:      opt.Alpha,
			Seed:       opt.Seed,
			Samples:    opt.TestSamples,
			ExactLimit: opt.TestExactLimit,
			Nulls:      e.cache,
		},
		SkipInverse: !opt.IncludeInverse,
		Policy:      policy,
		Parallelism: opt.Parallelism,
		Seed:        opt.Seed,
		CacheTag:    st.tag,
		TestCache:   e.cache,
		Obs:         e.met.stage,
	}
}

// Search runs the full pipeline (context selection + distribution
// comparison) for the query nodes.
//
// Deprecated: use Do, which adds request-scoped cancellation and
// per-request overrides. Search(q) is exactly
// Do(context.Background(), Query{Nodes: q}).
func (e *Engine) Search(query []NodeID) (Result, error) {
	return e.Do(context.Background(), Query{Nodes: query})
}

// SearchBatch runs Search for every query in one batched pass and returns
// one Result per query, in order.
//
// Deprecated: use DoBatch (one batched pass, request-scoped), or DoStream
// to receive each result as it completes instead of barriering on the
// batch. SearchBatch(qs) returns exactly what DoBatch returns for the
// same queries with no overrides.
func (e *Engine) SearchBatch(queries [][]NodeID) ([]Result, error) {
	qs := make([]Query, len(queries))
	for i, q := range queries {
		qs[i] = Query{Nodes: q}
	}
	return e.DoBatch(context.Background(), qs)
}

// SearchNames resolves entity names and runs Search.
//
// Deprecated: use Resolve followed by Do; the two-step form exposes the
// *UnresolvedError for did-you-mean handling and takes a ctx.
func (e *Engine) SearchNames(names ...string) (Result, error) {
	query, err := e.Resolve(names...)
	if err != nil {
		return Result{}, err
	}
	return e.Do(context.Background(), Query{Nodes: query})
}

// Context returns only the top-k similar nodes for a query, against the
// current graph epoch.
func (e *Engine) Context(query []NodeID, k int) []ContextItem {
	view := e.vg.View()
	return e.stateFor(e.opt, view).sel.Select(view.G, query, k)
}

// Compare runs only the distribution-comparison stage against an explicit
// context set (bring-your-own-context).
//
// Deprecated: use DoCompare, which adds request-scoped cancellation and
// per-request overrides.
func (e *Engine) Compare(query, contextSet []NodeID) []Characteristic {
	out, _ := e.DoCompare(context.Background(), query, contextSet, Query{})
	return out
}

// DoCompare runs only the distribution-comparison stage against an
// explicit context set (bring-your-own-context), under q's per-request
// overrides — including the TopK payload cut (q.Nodes and ContextSize
// are ignored; pass Query{} for engine defaults). Cancellation stops the
// label pool within one test and returns ctx.Err().
func (e *Engine) DoCompare(ctx context.Context, query, contextSet []NodeID, q Query) ([]Characteristic, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	view := e.vg.View()
	out, err := core.CompareSets(ctx, view.G, query, contextSet, e.coreOptionsFor(e.opt.apply(q), view))
	if err != nil {
		return nil, err
	}
	if q.TopK > 0 && len(out) > q.TopK {
		out = out[:q.TopK:q.TopK]
	}
	return out, nil
}

// LoadGraph reads triples (N-Triples subset or TSV) from r and builds a
// graph. Triples whose predicate equals typePredicate become node types;
// pass "" to keep them as edges.
func LoadGraph(r io.Reader, typePredicate string) (*Graph, error) {
	store, err := ntriples.LoadStore(r)
	if err != nil {
		return nil, fmt.Errorf("notable: loading triples: %w", err)
	}
	return kg.FromStore(store, typePredicate), nil
}

// LoadGraphFile loads a graph from a file path: binary snapshots (written
// by SaveSnapshotFile) are detected by the .kgsnap extension or — so a
// renamed snapshot loads rather than failing as a triple parse — by
// sniffing the snapshot magic bytes; anything else parses as triples with
// "type" as the type predicate.
func LoadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".kgsnap") {
		// Fast path: the canonical extension skips the sniff.
		return kg.ReadSnapshot(f)
	}
	br := bufio.NewReader(f)
	if head, err := br.Peek(len(kg.SnapshotMagic)); err == nil && string(head) == kg.SnapshotMagic {
		return kg.ReadSnapshot(br)
	}
	return LoadGraph(br, "type")
}

// SaveSnapshotFile writes the graph's binary snapshot to path.
func SaveSnapshotFile(g *Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshot restores a graph from a binary snapshot stream.
func ReadSnapshot(r io.Reader) (*Graph, error) { return kg.ReadSnapshot(r) }
