// Package notable is the public API of the notable-characteristics-search
// library, a reproduction of "Notable Characteristics Search through
// Knowledge Graphs" (Mottin et al., EDBT 2018).
//
// Given a knowledge graph and a small set of query entities, the library
// finds the context of the query — the entities most similar to it — and
// the notable characteristics: edge labels whose value or cardinality
// distribution over the query deviates significantly from the context's.
//
// Quick start:
//
//	b := notable.NewBuilder(64)
//	b.AddEdge("Angela Merkel", "studied", "Physics")
//	// ... more edges ...
//	g := b.Build()
//
//	engine := notable.NewEngine(g, notable.Options{ContextSize: 30})
//	res, err := engine.SearchNames("Angela Merkel", "Barack Obama")
//	for _, c := range res.NotableOnly() {
//	    fmt.Printf("%s (score %.2f, %s)\n", c.Name, c.Score, c.Kind)
//	}
//
// Graphs can be built programmatically (NewBuilder), loaded from triple
// files (LoadGraphFile), or restored from binary snapshots (ReadSnapshot).
//
// # Caching and determinism
//
// An Engine memoizes four layers of repeated work in one bounded LRU
// (Options.CacheSize, optionally byte-budgeted via Options.CacheBytes,
// optionally sharded via Options.CacheShards for concurrent traffic).
// The selector layer caches score vectors and ranked contexts, so a warm
// query skips metapath mining and walking; the comparison layer caches
// per-label test records, so a warm query also skips distribution
// building and multinomial testing — a fully warm repeated Search
// recomputes nothing but the top-k cut. Two more layers serve the
// interactive-refinement workload, where consecutive queries overlap
// rather than repeat: the seed layer (Options.SeedCacheBytes) keeps
// single-seed PageRank vectors, so adding or removing one entity from a
// RandomWalk-selected query re-solves only the new entity; and the null
// layer keeps the multinomial test's Monte-Carlo null distributions,
// which depend only on the context distribution — labels whose context
// counts survive a refinement skip the sampling loop outright.
// CacheStats exposes hit/miss counters and resident bytes per layer.
//
// # Batching
//
// SearchBatch serves many independent queries in one pass over the cold
// pipeline: each query consults the cache first, the misses share one
// multi-source PageRank solve (each distinct seed across the batch is
// solved once, with dense iterations blocked through a multi-vector
// gather kernel on large graphs), and the comparison stages fan out
// through a process-wide bounded executor. Batches of overlapping cold
// queries — eval sweeps, batch entity profiling, bursty traffic — run
// severalfold faster than sequential Search calls with identical output.
//
// Neither caching, batching, nor parallelism changes results: every
// randomized component takes an explicit seed, label tests run on a
// bounded worker pool writing to fixed per-label slots, the dense
// PageRank gather is row-partitioned, and every batched stage replicates
// its sequential arithmetic, so every cache state, batch size, and worker
// count produces bitwise-identical output.
package notable

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/ctxsel"
	"repro/internal/dist"
	"repro/internal/kg"
	"repro/internal/ntriples"
	"repro/internal/ppr"
	"repro/internal/qcache"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/topk"
)

// Re-exported graph types: the kg package is internal, the facade exposes
// what callers need.
type (
	// Graph is an immutable labeled knowledge graph.
	Graph = kg.Graph
	// Builder constructs graphs.
	Builder = kg.Builder
	// NodeID identifies a graph node.
	NodeID = kg.NodeID
	// LabelID identifies an edge label.
	LabelID = kg.LabelID
	// Result is a completed search: context plus tested characteristics.
	Result = core.Result
	// Characteristic is the per-label test record.
	Characteristic = core.Characteristic
	// ContextItem is a scored context node.
	ContextItem = topk.Item
)

// Selector names accepted by Options.Selector.
const (
	SelectorContextRW  = "contextrw"
	SelectorRandomWalk = "randomwalk"
	SelectorSimRank    = "simrank"
	SelectorJaccard    = "jaccard"
)

// UnseenPolicy values for Options.Policy.
const (
	// PolicyStrict is the paper's formula: query values the context never
	// shows are maximally notable.
	PolicyStrict = "strict"
	// PolicyPooled pools idiosyncratic values; see the dist package for
	// when this matters.
	PolicyPooled = "pooled"
)

// NewBuilder returns a graph builder with capacity hints for nEdges edges.
func NewBuilder(nEdges int) *Builder { return kg.NewBuilder(nEdges) }

// Options configures an Engine. The zero value reproduces the paper's
// defaults: ContextRW selection, context size 100, significance 0.05,
// strict unseen-value policy.
type Options struct {
	// ContextSize is k, the number of context nodes (default 100).
	ContextSize int
	// Selector is one of the Selector* constants (default ContextRW).
	Selector string
	// Walks is the PathMining budget for ContextRW (default 200000).
	Walks int
	// Alpha is the significance level (default 0.05).
	Alpha float64
	// Policy is PolicyStrict or PolicyPooled (default strict).
	Policy string
	// IncludeInverse keeps the auto-generated l⁻¹ labels in reports.
	IncludeInverse bool
	// Seed drives all randomized components (default 1).
	Seed int64
	// Parallelism bounds the workers a search draws from the shared
	// executor — label tests within one query, and queries within one
	// SearchBatch. 0 means the core default (4). Like every concurrency
	// knob here it never changes results, only wall-clock.
	Parallelism int
	// CacheSize bounds the engine's query cache: the number of memoized
	// entries across all four cache layers — selector score
	// vectors/contexts, per-label test records, per-seed PageRank
	// vectors, and Monte-Carlo null distributions (see internal/qcache).
	// 0 selects DefaultCacheSize; negative disables caching. Caching
	// never changes results — every randomized component is seeded — it
	// only skips repeated work: a warm repeat of a query skips metapath
	// mining, walking, distribution building, and multinomial testing
	// entirely, and an overlapping query re-solves only its new seeds.
	CacheSize int
	// CacheBytes optionally bounds the query cache by estimated resident
	// bytes alongside the entry cap. Selector entries weigh ~8 bytes per
	// graph node (a dense score vector); per-label test records are small.
	// 0 means no byte bound; CacheStats reports per-layer residency either
	// way, so a budget can be sized from observed load.
	CacheBytes int64
	// TestSamples overrides the multinomial test's Monte-Carlo sample
	// count (default 20000). Lower is faster and coarser: the sampling
	// error of a p-value scales with 1/√samples. A serving deployment
	// trading test resolution for latency sets this explicitly; results
	// remain deterministic for any value.
	TestSamples int
	// TestExactLimit overrides the outcome-composition count up to which
	// the test enumerates exactly instead of sampling (default 200000).
	TestExactLimit int
	// SeedCacheBytes bounds the seed-vector cache layer: single-seed
	// PageRank vectors memoized across searches (RandomWalk selection),
	// so a query overlapping an earlier one — interactive refinement —
	// solves only its new entities. Vectors weigh up to ~8 bytes per
	// graph node each (less while a solve stays frontier-sparse). 0
	// selects DefaultSeedCacheBytes; negative disables the layer. Like
	// every cache layer it never changes results, only repeated work.
	SeedCacheBytes int64
	// CacheShards splits the query cache into 2^⌈log₂ shards⌉
	// shared-nothing shards (per-shard lock and LRU, budgets split
	// evenly) to cut mutex pressure under concurrent serving traffic.
	// 0 or 1 keeps the single exact LRU — the default, whose byte-budget
	// enforcement is exact; see internal/qcache for the (slight) budget
	// slack sharding introduces.
	CacheShards int
}

// DefaultCacheSize is the query-cache capacity used when Options.CacheSize
// is zero. A warm query occupies one selector entry plus one entry per
// tested label, so size CacheSize to roughly (hot queries) × (labels per
// query + 1) — the default keeps a few hundred fully-warm queries on
// typical label counts. Entry sizes range from a per-label record to an
// n-float score vector; Options.CacheBytes and the per-layer budgets
// below bound the big layers by bytes.
const DefaultCacheSize = 4096

// DefaultSeedCacheBytes bounds the seed-vector layer when
// Options.SeedCacheBytes is zero: 64 MiB keeps tens of hot entities
// resident on million-node graphs (a dense vector is 8·n bytes) without
// letting an entity sweep displace the rest of the cache.
const DefaultSeedCacheBytes = 64 << 20

// DefaultNullCacheBytes bounds the comparison stage's Monte-Carlo
// null-distribution layer (~8 bytes per test sample per distinct context
// distribution): 32 MiB holds thousands of memoized distributions at the
// default sample count. Not separately configurable — Options.CacheBytes
// bounds the total when set.
const DefaultNullCacheBytes = 32 << 20

// Engine runs searches against one graph. Create with NewEngine; safe for
// concurrent use once constructed.
type Engine struct {
	g     *Graph
	idx   *search.Index
	opt   Options
	cache *qcache.Cache
}

// NewEngine prepares an engine (including the entity-name index) for g.
func NewEngine(g *Graph, opt Options) *Engine {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	size := opt.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	cfg := qcache.Config{Capacity: size, ByteBudget: opt.CacheBytes, Shards: opt.CacheShards}
	cfg.LayerBudgets[qcache.LayerNull] = DefaultNullCacheBytes
	if opt.SeedCacheBytes >= 0 {
		seedBudget := opt.SeedCacheBytes
		if seedBudget == 0 {
			seedBudget = DefaultSeedCacheBytes
		}
		cfg.LayerBudgets[qcache.LayerSeed] = seedBudget
	}
	return &Engine{g: g, idx: search.NewIndex(g), opt: opt, cache: qcache.NewSharded(cfg)}
}

// CacheStats reports the query cache's counters, aggregated over all
// shards and broken down per layer (Stats.Layers): the selector layer
// (one entry per query's score vector or ranked context, ~8 bytes per
// graph node each), the comparison layer (one small entry per tested
// label), the seed layer (one PageRank vector per hot entity), and the
// null layer (one Monte-Carlo null distribution per distinct context
// distribution). A fully warm repeated Search performs exactly one
// selector hit plus one hit per tested label and zero misses; a
// refinement step shows seed-layer hits for the retained entities and
// null-layer hits for the labels whose context distribution survived.
// A cache-disabled engine reports zeros.
func (e *Engine) CacheStats() qcache.Stats { return e.cache.Stats() }

// Graph returns the engine's graph.
func (e *Engine) Graph() *Graph { return e.g }

// Resolve maps entity names (exact or fuzzy) to node IDs.
func (e *Engine) Resolve(names ...string) ([]NodeID, error) {
	ids, missing := e.idx.Resolve(names)
	if len(missing) > 0 {
		return ids, fmt.Errorf("notable: unresolved entities: %s", strings.Join(missing, ", "))
	}
	return ids, nil
}

// Suggest returns up to limit candidate entities for a mention.
func (e *Engine) Suggest(mention string, limit int) []search.Hit {
	return e.idx.Lookup(mention, limit)
}

// seedCache returns the cache the RandomWalk selector's per-seed PageRank
// vectors memoize through — the engine cache, unless the layer (or
// caching altogether) is disabled.
func (e *Engine) seedCache() *qcache.Cache {
	if e.opt.SeedCacheBytes < 0 {
		return nil
	}
	return e.cache
}

// selector instantiates the configured context selector.
func (e *Engine) selector() ctxsel.Selector {
	switch e.opt.Selector {
	case SelectorRandomWalk:
		return ctxsel.RandomWalk{Opt: ppr.Options{SeedCache: e.seedCache()}}
	case SelectorSimRank:
		return ctxsel.SimRank{}
	case SelectorJaccard:
		return ctxsel.Jaccard{}
	default:
		return ctxsel.ContextRW{Walks: e.opt.Walks, Seed: e.opt.Seed}
	}
}

// cachedSelector wraps a selector with the engine's query cache. For
// score-based selectors (ctxsel.Scorer) it memoizes the dense score
// vector, which subsumes the mined metapaths — a warm hit serves any
// context size with zero mining or walking. Other selectors memoize the
// ranked context per (query, k). Queries with duplicate nodes bypass the
// cache (see qcache.Key).
type cachedSelector struct {
	e     *Engine
	inner ctxsel.Selector
}

// Name implements ctxsel.Selector.
func (cs cachedSelector) Name() string { return cs.inner.Name() }

// scoresFootprint is the byte accounting hint for a cached dense score
// vector.
func scoresFootprint(scores []float64, key string) int64 {
	return 8*int64(len(scores)) + int64(len(key)) + 48
}

// Select implements ctxsel.Selector.
func (cs cachedSelector) Select(g *kg.Graph, query []NodeID, k int) []topk.Item {
	prefix := cs.prefix()
	if scorer, ok := cs.inner.(ctxsel.Scorer); ok {
		key, cacheable := qcache.Key(prefix, query)
		if !cacheable {
			return cs.inner.Select(g, query, k)
		}
		if v, hit := cs.e.cache.Get(key); hit {
			return ctxsel.TopKFromScores(v.([]float64), query, k)
		}
		scores := scorer.Scores(g, query)
		cs.e.cache.PutSized(key, scores, qcache.LayerSelector, scoresFootprint(scores, key))
		return ctxsel.TopKFromScores(scores, query, k)
	}
	key, cacheable := qcache.Key(fmt.Sprintf("%s|k%d", prefix, k), query)
	if !cacheable {
		return cs.inner.Select(g, query, k)
	}
	// Contexts are cached as private copies: callers own (and may mutate)
	// every slice they receive, matching the uncached selectors.
	if v, hit := cs.e.cache.Get(key); hit {
		return append([]topk.Item(nil), v.([]topk.Item)...)
	}
	items := cs.inner.Select(g, query, k)
	cs.e.cache.PutSized(key, append([]topk.Item(nil), items...),
		qcache.LayerSelector, 16*int64(len(items))+int64(len(key))+48)
	return items
}

func (cs cachedSelector) prefix() string {
	return fmt.Sprintf("%s|w%d|s%d", cs.inner.Name(), cs.e.opt.Walks, cs.e.opt.Seed)
}

// SelectBatch implements ctxsel.BatchSelector: each query consults the
// cache first, and only the misses enter the inner selector — batched
// through ScoresBatch (the multi-source PageRank solve) when the inner
// selector provides it. Hits, misses, and every batch size produce
// exactly what per-query Select calls would.
func (cs cachedSelector) SelectBatch(g *kg.Graph, queries [][]NodeID, k int) [][]topk.Item {
	out := make([][]topk.Item, len(queries))
	scorer, isScorer := cs.inner.(ctxsel.Scorer)
	if !isScorer {
		// Ranked-context caching is per (query, k); resolve query by query.
		for i, q := range queries {
			out[i] = cs.Select(g, q, k)
		}
		return out
	}
	prefix := cs.prefix()
	keys := make([]string, len(queries))
	var missIdx []int
	var missQueries [][]NodeID
	for i, q := range queries {
		key, cacheable := qcache.Key(prefix, q)
		if cacheable {
			if v, hit := cs.e.cache.Get(key); hit {
				out[i] = ctxsel.TopKFromScores(v.([]float64), q, k)
				continue
			}
			keys[i] = key
		}
		// Cache misses and uncacheable (duplicate-node) queries both go to
		// the solver; only the former are stored afterwards.
		missIdx = append(missIdx, i)
		missQueries = append(missQueries, q)
	}
	if len(missQueries) == 0 {
		return out
	}
	var scores [][]float64
	if bs, ok := cs.inner.(ctxsel.BatchScorer); ok {
		scores = bs.ScoresBatch(g, missQueries)
	} else {
		scores = make([][]float64, len(missQueries))
		for j, q := range missQueries {
			scores[j] = scorer.Scores(g, q)
		}
	}
	for j, i := range missIdx {
		if keys[i] != "" {
			cs.e.cache.PutSized(keys[i], scores[j], qcache.LayerSelector, scoresFootprint(scores[j], keys[i]))
		}
		out[i] = ctxsel.TopKFromScores(scores[j], queries[i], k)
	}
	return out
}

// cachedSelectorFor wraps sel with the engine cache unless caching is
// disabled.
func (e *Engine) cachedSelectorFor(sel ctxsel.Selector) ctxsel.Selector {
	if e.cache == nil {
		return sel
	}
	return cachedSelector{e: e, inner: sel}
}

// coreOptions translates the facade options.
func (e *Engine) coreOptions() core.Options {
	policy := dist.UnseenStrict
	if e.opt.Policy == PolicyPooled {
		policy = dist.UnseenPooled
	}
	return core.Options{
		ContextSize: e.opt.ContextSize,
		Selector:    e.cachedSelectorFor(e.selector()),
		Test: stats.Multinomial{
			Alpha:      e.opt.Alpha,
			Seed:       e.opt.Seed,
			Samples:    e.opt.TestSamples,
			ExactLimit: e.opt.TestExactLimit,
			Nulls:      e.cache,
		},
		SkipInverse: !e.opt.IncludeInverse,
		Policy:      policy,
		Parallelism: e.opt.Parallelism,
		Seed:        e.opt.Seed,
		TestCache:   e.cache,
	}
}

// Search runs the full pipeline (context selection + distribution
// comparison) for the query nodes.
func (e *Engine) Search(query []NodeID) (Result, error) {
	if len(query) == 0 {
		return Result{}, fmt.Errorf("notable: empty query")
	}
	return core.FindNC(e.g, query, e.coreOptions()), nil
}

// SearchBatch runs Search for every query in one batched pass and returns
// one Result per query, in order. The batch amortizes the cold path:
// per-query cache consults come first, the misses enter one multi-source
// PageRank solve (unique seeds across the batch solved once, dense
// iterations blocked through the multi-vector gather kernel), and the
// comparison stages fan out through the process-wide executor. Results
// are bitwise identical to calling Search per query — batching, like
// caching, only removes repeated work — for every batch size and
// parallelism. Batches of independent cold queries (eval sweeps, batch
// entity profiling, bursty serving traffic) are the intended workload.
func (e *Engine) SearchBatch(queries [][]NodeID) ([]Result, error) {
	for i, q := range queries {
		if len(q) == 0 {
			return nil, fmt.Errorf("notable: empty query at batch index %d", i)
		}
	}
	return core.FindNCBatch(e.g, queries, e.coreOptions()), nil
}

// SearchNames resolves entity names and runs Search.
func (e *Engine) SearchNames(names ...string) (Result, error) {
	query, err := e.Resolve(names...)
	if err != nil {
		return Result{}, err
	}
	return e.Search(query)
}

// Context returns only the top-k similar nodes for a query.
func (e *Engine) Context(query []NodeID, k int) []ContextItem {
	return e.cachedSelectorFor(e.selector()).Select(e.g, query, k)
}

// Compare runs only the distribution-comparison stage against an explicit
// context set (bring-your-own-context).
func (e *Engine) Compare(query, context []NodeID) []Characteristic {
	return core.CompareSets(e.g, query, context, e.coreOptions())
}

// LoadGraph reads triples (N-Triples subset or TSV) from r and builds a
// graph. Triples whose predicate equals typePredicate become node types;
// pass "" to keep them as edges.
func LoadGraph(r io.Reader, typePredicate string) (*Graph, error) {
	store, err := ntriples.LoadStore(r)
	if err != nil {
		return nil, fmt.Errorf("notable: loading triples: %w", err)
	}
	return kg.FromStore(store, typePredicate), nil
}

// LoadGraphFile loads a graph from a file path: binary snapshots (written
// by SaveSnapshotFile) are detected by the .kgsnap extension, anything
// else parses as triples with "type" as the type predicate.
func LoadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".kgsnap") {
		return kg.ReadSnapshot(f)
	}
	return LoadGraph(f, "type")
}

// SaveSnapshotFile writes the graph's binary snapshot to path.
func SaveSnapshotFile(g *Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshot restores a graph from a binary snapshot stream.
func ReadSnapshot(r io.Reader) (*Graph, error) { return kg.ReadSnapshot(r) }
