package notable

// Engine-level replication tests: a replica rebuilt from ReplSnapshot +
// ReplTail answers bitwise-identically to the primary AND to a
// from-scratch oracle at the same epoch, snapshot/stream composition
// has no gap across checkpoints, truncated positions report
// ErrEpochTruncated, and the durability/reset guard rails hold. The
// HTTP layer on top is covered in internal/server and internal/repl.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/wal"
)

// replicaFrom builds a replica engine from the primary's snapshot
// export, as a follower's bootstrap would.
func replicaFrom(t *testing.T, primary *Engine, opt Options) (*Engine, uint64) {
	t.Helper()
	epoch, rc, err := primary.ReplSnapshot()
	if err != nil {
		t.Fatalf("ReplSnapshot: %v", err)
	}
	defer rc.Close()
	g, err := ReadSnapshot(rc)
	if err != nil {
		t.Fatalf("decoding replication snapshot: %v", err)
	}
	return NewReplicaEngine(g, opt, epoch), epoch
}

// replayTail streams the primary's tail from the given epoch into the
// replica, asserting the published epoch matches the logged epoch on
// every batch — the follower's core loop, minus HTTP.
func replayTail(t *testing.T, primary, replica *Engine, from uint64) uint64 {
	t.Helper()
	tail, durable, err := primary.ReplTail(from)
	if err != nil {
		t.Fatalf("ReplTail(%d): %v", from, err)
	}
	fr := wal.NewFrameReader(bytes.NewReader(tail))
	for {
		rec, err := fr.Next()
		if errors.Is(err, io.EOF) {
			return durable
		}
		if err != nil {
			t.Fatalf("decoding tail: %v", err)
		}
		got, err := replica.ApplyTriples(context.Background(), rec.Adds, rec.Dels)
		if err != nil {
			t.Fatalf("applying epoch %d on replica: %v", rec.Epoch, err)
		}
		if got != rec.Epoch {
			t.Fatalf("replica published epoch %d for logged epoch %d", got, rec.Epoch)
		}
	}
}

// TestReplicaMatchesPrimaryBitwise: snapshot + tail replay rebuilds the
// primary's exact bits — same answer as the primary and as a
// from-scratch engine at the same epoch.
func TestReplicaMatchesPrimaryBitwise(t *testing.T) {
	opt := durOpt()
	primary, _, err := NewDurableEngine(buildLeaders(), opt, quietDur(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	applyBatches(t, primary, 6)

	replica, snapEpoch := replicaFrom(t, primary, opt)
	defer replica.Close()
	durable := replayTail(t, primary, replica, snapEpoch)
	if durable != 6 || replica.Epoch() != 6 {
		t.Fatalf("replica at epoch %d (durable %d), want 6", replica.Epoch(), durable)
	}

	want := durableDo(t, primary)
	got := durableDo(t, replica)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replica result differs from primary:\n got %+v\nwant %+v", got, want)
	}
	oracle := oracleResult(t, opt, 6)
	if !reflect.DeepEqual(got, oracle) {
		t.Fatalf("replica result differs from from-scratch oracle:\n got %+v\nwant %+v", got, oracle)
	}
}

// TestReplicaBootstrapAcrossCheckpoint: when the primary has
// checkpointed, the snapshot is the checkpoint and the tail starts
// exactly there — no gap, no overlap, same final bits.
func TestReplicaBootstrapAcrossCheckpoint(t *testing.T) {
	opt := durOpt()
	primary, _, err := NewDurableEngine(buildLeaders(), opt, quietDur(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	applyBatches(t, primary, 4)
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More batches after the checkpoint: the replica must get these from
	// the stream.
	for i := 4; i < 7; i++ {
		adds, dels := durableBatch(i)
		if _, err := primary.ApplyTriples(context.Background(), adds, dels); err != nil {
			t.Fatal(err)
		}
	}

	replica, snapEpoch := replicaFrom(t, primary, opt)
	defer replica.Close()
	if snapEpoch != 4 {
		t.Fatalf("snapshot epoch %d, want the checkpoint's 4", snapEpoch)
	}
	replayTail(t, primary, replica, snapEpoch)
	if replica.Epoch() != 7 {
		t.Fatalf("replica caught up to epoch %d, want 7", replica.Epoch())
	}
	if got, want := durableDo(t, replica), durableDo(t, primary); !reflect.DeepEqual(got, want) {
		t.Fatalf("replica result differs from primary after checkpoint bootstrap:\n got %+v\nwant %+v", got, want)
	}
}

// TestReplTailTruncated: a stream position truncated behind two
// checkpoints reports ErrEpochTruncated — the re-bootstrap signal.
func TestReplTailTruncated(t *testing.T) {
	opt := durOpt()
	primary, _, err := NewDurableEngine(buildLeaders(), opt, quietDur(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	applyBatches(t, primary, 3)
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 6; i++ {
		adds, dels := durableBatch(i)
		if _, err := primary.ApplyTriples(context.Background(), adds, dels); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Records ≤ 3 are now truncated away (retention floor = first
	// checkpoint); a follower parked at epoch 1 must re-bootstrap.
	if _, _, err := primary.ReplTail(1); !errors.Is(err, ErrEpochTruncated) {
		t.Fatalf("ReplTail(1) after truncation: got %v, want ErrEpochTruncated", err)
	}
	// From the first checkpoint's epoch onward the log still serves.
	if _, _, err := primary.ReplTail(3); err != nil {
		t.Fatalf("ReplTail(3): %v", err)
	}
}

// TestReplExportsRequireDurability: a WAL-less engine has no durable
// stream to ship, and a durable engine refuses ResetGraph.
func TestReplExportsRequireDurability(t *testing.T) {
	e := NewEngine(buildLeaders(), durOpt())
	defer e.Close()
	if _, err := e.DurableEpoch(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("DurableEpoch on in-memory engine: %v", err)
	}
	if _, _, err := e.ReplTail(0); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("ReplTail on in-memory engine: %v", err)
	}
	if _, err := e.ReplChanged(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("ReplChanged on in-memory engine: %v", err)
	}
	if _, _, err := e.ReplSnapshot(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("ReplSnapshot on in-memory engine: %v", err)
	}

	d, _, err := NewDurableEngine(buildLeaders(), durOpt(), quietDur(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.ResetGraph(buildLeaders(), 10); !errors.Is(err, ErrDurability) {
		t.Fatalf("ResetGraph on durable engine: got %v, want ErrDurability", err)
	}
}

// TestResetGraphOnReplica: the resync path replaces a replica's state
// at a forward epoch and refuses rewinds; queries and the name index
// track the new graph.
func TestResetGraphOnReplica(t *testing.T) {
	opt := durOpt()
	replica := NewReplicaEngine(buildLeaders(), opt, 5)
	defer replica.Close()
	if replica.Epoch() != 5 {
		t.Fatalf("replica epoch %d, want 5", replica.Epoch())
	}

	// Build the resync target: the leaders graph after two batches, as a
	// primary's checkpoint at epoch 7 would hold.
	donor := NewEngine(buildLeaders(), opt)
	applyBatches(t, donor, 2)
	var buf bytes.Buffer
	if err := donor.Graph().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.ResetGraph(g, 7); err != nil {
		t.Fatalf("ResetGraph: %v", err)
	}
	if replica.Epoch() != 7 {
		t.Fatalf("epoch after reset %d, want 7", replica.Epoch())
	}
	if got, want := durableDo(t, replica), durableDo(t, donor); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-reset result differs from donor:\n got %+v\nwant %+v", got, want)
	}
	if err := replica.ResetGraph(buildLeaders(), 3); err == nil {
		t.Fatal("ResetGraph accepted an epoch rewind from 7 to 3")
	}
}
