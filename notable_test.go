package notable

import (
	"path/filepath"
	"strings"
	"testing"
)

// buildLeaders creates a small end-to-end graph through the public API.
func buildLeaders() *Graph {
	b := NewBuilder(128)
	leaders := []string{"Angela Merkel", "Barack Obama", "Vladimir Putin",
		"Matteo Renzi", "François Hollande", "David Cameron", "Xi Jinping",
		"Justin Trudeau", "Shinzo Abe", "Dilma Rousseff"}
	for i, l := range leaders {
		b.SetType(l, "politician")
		b.AddEdge(l, "memberOf", "G20")
		b.AddEdge(l, "attended", "Summit")
		for d := 1; d <= 3; d++ {
			b.AddEdge(l, "met", leaders[(i+d)%len(leaders)])
		}
		if l == "Angela Merkel" {
			b.AddEdge(l, "studied", "Physics")
			continue
		}
		b.AddEdge(l, "studied", "Law")
		b.AddEdge(l, "hasChild", "Child of "+l)
	}
	return b.Build()
}

func TestEngineSearchNames(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{ContextSize: 8, Walks: 30000, Seed: 3})
	res, err := e.SearchNames("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Context) == 0 {
		t.Fatal("no context")
	}
	notables := res.NotableOnly()
	found := map[string]bool{}
	for _, c := range notables {
		found[c.Name] = true
	}
	if !found["hasChild"] && !found["studied"] {
		t.Fatalf("expected hasChild or studied notable, got %v", found)
	}
}

func TestEngineResolveErrors(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{})
	if _, err := e.SearchNames("No Such Person Anywhere"); err == nil {
		t.Fatal("unresolvable entity should error")
	}
	if _, err := e.Search(nil); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestEngineSuggest(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{})
	hits := e.Suggest("merkel", 3)
	if len(hits) == 0 || !strings.Contains(hits[0].Name, "Merkel") {
		t.Fatalf("Suggest = %v", hits)
	}
}

func TestEngineSelectors(t *testing.T) {
	g := buildLeaders()
	query, err := NewEngine(g, Options{}).Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []string{SelectorContextRW, SelectorRandomWalk, SelectorSimRank, SelectorJaccard} {
		e := NewEngine(g, Options{Selector: sel, ContextSize: 5, Walks: 10000, Seed: 2})
		ctx := e.Context(query, 5)
		if len(ctx) == 0 {
			t.Fatalf("selector %s returned empty context", sel)
		}
	}
}

func TestEngineCompare(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{Seed: 5})
	query, _ := e.Resolve("Angela Merkel", "Barack Obama")
	context, _ := e.Resolve("Vladimir Putin", "Matteo Renzi", "François Hollande",
		"David Cameron", "Xi Jinping", "Justin Trudeau", "Shinzo Abe", "Dilma Rousseff")
	chars := e.Compare(query, context)
	if len(chars) == 0 {
		t.Fatal("no characteristics")
	}
	for _, c := range chars {
		if strings.HasSuffix(c.Name, "⁻¹") {
			t.Fatalf("inverse label %s leaked into default report", c.Name)
		}
	}
}

func TestEnginePolicyOption(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{Policy: PolicyPooled, Seed: 5})
	query, _ := e.Resolve("Angela Merkel", "Barack Obama")
	context, _ := e.Resolve("Vladimir Putin", "Matteo Renzi", "François Hollande")
	if len(e.Compare(query, context)) == 0 {
		t.Fatal("pooled policy comparison failed")
	}
}

func TestLoadGraphFromTriples(t *testing.T) {
	input := strings.NewReader(
		"Angela Merkel\tstudied\tPhysics\n" +
			"Angela Merkel\ttype\tpolitician\n" +
			"Barack Obama\tstudied\tLaw\n")
	g, err := LoadGraph(input, "type")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 {
		t.Fatal("empty graph")
	}
	merkel, ok := g.NodeByName("Angela Merkel")
	if !ok {
		t.Fatal("Merkel missing")
	}
	if g.TypeName(g.TypeOf(merkel)) != "politician" {
		t.Fatal("type predicate not honored")
	}
}

func TestLoadGraphParseError(t *testing.T) {
	if _, err := LoadGraph(strings.NewReader("only\ttwo\n"), ""); err == nil {
		t.Fatal("malformed triples should error")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	g := buildLeaders()
	path := filepath.Join(t.TempDir(), "graph.kgsnap")
	if err := SaveSnapshotFile(g, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %s vs %s", got.Stats(), g.Stats())
	}
}

func TestLoadGraphFileTriples(t *testing.T) {
	path := filepath.Join(t.TempDir(), "triples.tsv")
	data := "a\tp\tb\nb\tp\tc\n"
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if _, err := LoadGraphFile(filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Fatal("missing file should error")
	}
}
